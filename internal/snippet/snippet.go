// Package snippet generates query-biased text snippets for meaningful
// fragments, in the spirit of the snippet work the paper cites as related
// ([25], Huang, Liu & Chen, SIGMOD 2008): a compact, human-readable line
// per fragment showing every query keyword in its immediate context.
//
// The generator walks the fragment's keyword nodes in document order, takes
// a window of words around each keyword occurrence, highlights keywords,
// merges overlapping windows and truncates to a budget, preferring coverage
// (every keyword visible at least once) over repetition.
package snippet

import (
	"strings"

	"xks/internal/analysis"
)

// Options tunes snippet generation.
type Options struct {
	// Window is the number of context words kept on each side of a
	// keyword occurrence (default 3).
	Window int
	// MaxWords caps the total snippet length in words (default 40).
	MaxWords int
	// Highlight wraps matched keywords; defaults to "[" and "]".
	HighlightL, HighlightR string
	// Ellipsis joins non-adjacent extracts (default " … ").
	Ellipsis string
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 3
	}
	if o.MaxWords <= 0 {
		o.MaxWords = 40
	}
	if o.HighlightL == "" && o.HighlightR == "" {
		o.HighlightL, o.HighlightR = "[", "]"
	}
	if o.Ellipsis == "" {
		o.Ellipsis = " … "
	}
	return o
}

// Source is one text-bearing node of a fragment, in document order.
type Source struct {
	// Label is the element name, shown as a field prefix ("title: …").
	Label string
	// Text is the raw text to extract from.
	Text string
}

// Generator builds snippets with a shared analyzer.
type Generator struct {
	an   *analysis.Analyzer
	opts Options
}

// NewGenerator returns a snippet generator; a nil analyzer uses the
// default.
func NewGenerator(an *analysis.Analyzer, opts Options) *Generator {
	if an == nil {
		an = analysis.New()
	}
	return &Generator{an: an, opts: opts.withDefaults()}
}

type extract struct {
	label string
	words []string
	hits  map[string]bool // keywords covered by this extract
}

// Generate produces a snippet over the sources for the given normalized
// query keywords. Sources that contain no keyword contribute nothing; if
// nothing matches, the first source's leading words are returned as a
// fallback.
func (g *Generator) Generate(sources []Source, keywords []string) string {
	kw := make(map[string]bool, len(keywords))
	for _, k := range keywords {
		kw[strings.ToLower(k)] = true
	}
	var extracts []extract
	for _, src := range sources {
		extracts = append(extracts, g.extractFrom(src, kw)...)
	}
	if len(extracts) == 0 {
		return g.fallback(sources)
	}

	// Greedy selection: first pass favours extracts that add unseen
	// keywords; second pass fills the remaining budget in document order.
	seen := map[string]bool{}
	budget := g.opts.MaxWords
	chosen := make([]bool, len(extracts))
	for i, ex := range extracts {
		adds := false
		for k := range ex.hits {
			if !seen[k] {
				adds = true
				break
			}
		}
		if !adds || len(ex.words) > budget {
			continue
		}
		chosen[i] = true
		budget -= len(ex.words)
		for k := range ex.hits {
			seen[k] = true
		}
	}
	for i, ex := range extracts {
		if chosen[i] || len(ex.words) > budget {
			continue
		}
		chosen[i] = true
		budget -= len(ex.words)
	}

	var parts []string
	for i, ex := range extracts {
		if !chosen[i] {
			continue
		}
		body := strings.Join(ex.words, " ")
		if ex.label != "" {
			body = ex.label + ": " + body
		}
		parts = append(parts, body)
	}
	return strings.Join(parts, g.opts.Ellipsis)
}

// extractFrom finds keyword occurrences in one source and cuts highlighted
// context windows, merging overlaps.
func (g *Generator) extractFrom(src Source, kw map[string]bool) []extract {
	raw := strings.Fields(src.Text)
	if len(raw) == 0 {
		return nil
	}
	type span struct{ lo, hi int }
	var spans []span
	hitAt := make([]string, len(raw))
	for i, w := range raw {
		norm := g.an.Normalize(w)
		if norm == "" || !kw[norm] {
			continue
		}
		hitAt[i] = norm
		lo := i - g.opts.Window
		if lo < 0 {
			lo = 0
		}
		hi := i + g.opts.Window + 1
		if hi > len(raw) {
			hi = len(raw)
		}
		if n := len(spans); n > 0 && lo <= spans[n-1].hi {
			if hi > spans[n-1].hi {
				spans[n-1].hi = hi
			}
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	var out []extract
	for _, sp := range spans {
		ex := extract{label: src.Label, hits: map[string]bool{}}
		for i := sp.lo; i < sp.hi; i++ {
			w := raw[i]
			if hitAt[i] != "" {
				w = g.opts.HighlightL + w + g.opts.HighlightR
				ex.hits[hitAt[i]] = true
			}
			ex.words = append(ex.words, w)
		}
		if sp.lo > 0 {
			ex.words = append([]string{"…"}, ex.words...)
		}
		if sp.hi < len(raw) {
			ex.words = append(ex.words, "…")
		}
		out = append(out, ex)
	}
	return out
}

func (g *Generator) fallback(sources []Source) string {
	for _, src := range sources {
		words := strings.Fields(src.Text)
		if len(words) == 0 {
			continue
		}
		if len(words) > g.opts.MaxWords {
			words = append(words[:g.opts.MaxWords], "…")
		}
		body := strings.Join(words, " ")
		if src.Label != "" {
			body = src.Label + ": " + body
		}
		return body
	}
	return ""
}
