package snippet

import (
	"strings"
	"testing"
)

func gen(opts Options) *Generator { return NewGenerator(nil, opts) }

func TestGenerateHighlightsKeywords(t *testing.T) {
	g := gen(Options{})
	out := g.Generate([]Source{
		{Label: "title", Text: "Efficient XML Keyword Search over large documents"},
	}, []string{"keyword", "search"})
	if !strings.Contains(out, "[Keyword]") || !strings.Contains(out, "[Search]") {
		t.Errorf("missing highlights: %q", out)
	}
	if !strings.HasPrefix(out, "title: ") {
		t.Errorf("missing label prefix: %q", out)
	}
}

func TestGenerateWindow(t *testing.T) {
	g := gen(Options{Window: 1})
	out := g.Generate([]Source{
		{Text: "one two three keyword five six seven"},
	}, []string{"keyword"})
	if !strings.Contains(out, "three [keyword] five") {
		t.Errorf("window cut wrong: %q", out)
	}
	if strings.Contains(out, "two") || strings.Contains(out, "six") {
		t.Errorf("window too wide: %q", out)
	}
	// Ellipses mark both truncated sides.
	if strings.Count(out, "…") != 2 {
		t.Errorf("ellipsis markers: %q", out)
	}
}

func TestGenerateMergesOverlaps(t *testing.T) {
	g := gen(Options{Window: 2})
	out := g.Generate([]Source{
		{Text: "alpha keyword beta search gamma"},
	}, []string{"keyword", "search"})
	// The two windows overlap and must merge into one extract without a
	// separating ellipsis.
	if strings.Contains(out, "… …") || strings.Count(out, "[") != 2 {
		t.Errorf("merge failed: %q", out)
	}
}

func TestGenerateCoversAllKeywordsFirst(t *testing.T) {
	g := gen(Options{Window: 1, MaxWords: 8})
	out := g.Generate([]Source{
		{Text: "alpha alpha alpha alpha alpha"}, // no keywords
		{Text: "xx keyword yy"},                 // keyword 1
		{Text: "aa keyword bb"},                 // keyword 1 again
		{Text: "cc search dd"},                  // keyword 2
	}, []string{"keyword", "search"})
	if !strings.Contains(out, "[keyword]") || !strings.Contains(out, "[search]") {
		t.Errorf("coverage sacrificed to repetition: %q", out)
	}
}

func TestGenerateBudget(t *testing.T) {
	g := gen(Options{Window: 10, MaxWords: 5})
	out := g.Generate([]Source{
		{Text: "w1 w2 w3 w4 w5 w6 w7 keyword w8 w9 w10 w11 w12"},
	}, []string{"keyword"})
	// The only extract exceeds the budget entirely: nothing fits, fall back
	// to leading words.
	if len(strings.Fields(out)) > 7 {
		t.Errorf("budget exceeded: %q", out)
	}
}

func TestGenerateFallbackNoMatches(t *testing.T) {
	g := gen(Options{MaxWords: 3})
	out := g.Generate([]Source{
		{Label: "abstract", Text: "completely unrelated text body here"},
	}, []string{"zebra"})
	if !strings.HasPrefix(out, "abstract: completely unrelated text") {
		t.Errorf("fallback = %q", out)
	}
	if !strings.HasSuffix(out, "…") {
		t.Errorf("fallback should mark truncation: %q", out)
	}
}

func TestGenerateEmptySources(t *testing.T) {
	g := gen(Options{})
	if out := g.Generate(nil, []string{"x"}); out != "" {
		t.Errorf("empty sources produced %q", out)
	}
	if out := g.Generate([]Source{{Text: ""}}, []string{"x"}); out != "" {
		t.Errorf("blank source produced %q", out)
	}
}

func TestCustomHighlightAndEllipsis(t *testing.T) {
	g := gen(Options{HighlightL: "<b>", HighlightR: "</b>", Ellipsis: " // ", Window: 0})
	out := g.Generate([]Source{
		{Text: "aa keyword bb"},
		{Text: "cc search dd"},
	}, []string{"keyword", "search"})
	if !strings.Contains(out, "<b>keyword</b>") || !strings.Contains(out, " // ") {
		t.Errorf("custom options ignored: %q", out)
	}
}

func TestStopWordsNeverMatch(t *testing.T) {
	g := gen(Options{})
	out := g.Generate([]Source{{Text: "the keyword the"}}, []string{"the", "keyword"})
	if strings.Contains(out, "[the]") {
		t.Errorf("stop word highlighted: %q", out)
	}
}

func TestPunctuationAroundKeywords(t *testing.T) {
	g := gen(Options{Window: 1})
	out := g.Generate([]Source{{Text: "intro (Keyword), outro"}}, []string{"keyword"})
	if !strings.Contains(out, "[(Keyword),]") {
		t.Errorf("punctuated match lost: %q", out)
	}
}

func BenchmarkGenerate(b *testing.B) {
	g := gen(Options{})
	src := []Source{
		{Label: "title", Text: "Efficient XML Keyword Search over large document collections"},
		{Label: "abstract", Text: strings.Repeat("filler words about data management and query processing ", 20) + "with keyword search semantics"},
	}
	kws := []string{"keyword", "search", "xml"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Generate(src, kws)
	}
}
