// Package stats computes structural statistics of XML datasets — the
// numbers one quotes when describing an evaluation corpus (§5.1 of the
// paper quotes sizes and keyword frequencies): node counts, depth
// distribution, label histogram, fan-out and keyword frequencies.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"xks/internal/index"
	"xks/internal/xmltree"
)

// Report summarizes one dataset.
type Report struct {
	Nodes        int
	MaxDepth     int
	AvgDepth     float64
	Leaves       int
	MaxFanOut    int
	AvgFanOut    float64 // over internal nodes
	Labels       int
	TopLabels    []LabelCount
	DepthCounts  []int // index = depth
	TextNodes    int
	TotalTextLen int
}

// LabelCount is one label histogram entry.
type LabelCount struct {
	Label string
	Count int
}

// Analyze walks the tree once and fills a report. topN limits TopLabels
// (0 = all labels).
func Analyze(t *xmltree.Tree, topN int) *Report {
	r := &Report{}
	hist := map[string]int{}
	var depthSum, internal, fanSum int
	t.Walk(func(n *xmltree.Node) bool {
		r.Nodes++
		d := n.Level()
		if d >= len(r.DepthCounts) {
			grown := make([]int, d+1)
			copy(grown, r.DepthCounts)
			r.DepthCounts = grown
		}
		r.DepthCounts[d]++
		depthSum += d
		if d > r.MaxDepth {
			r.MaxDepth = d
		}
		hist[n.Label]++
		if n.IsLeaf() {
			r.Leaves++
		} else {
			internal++
			fanSum += len(n.Children)
			if len(n.Children) > r.MaxFanOut {
				r.MaxFanOut = len(n.Children)
			}
		}
		if n.Text != "" {
			r.TextNodes++
			r.TotalTextLen += len(n.Text)
		}
		return true
	})
	if r.Nodes > 0 {
		r.AvgDepth = float64(depthSum) / float64(r.Nodes)
	}
	if internal > 0 {
		r.AvgFanOut = float64(fanSum) / float64(internal)
	}
	r.Labels = len(hist)
	for l, c := range hist {
		r.TopLabels = append(r.TopLabels, LabelCount{Label: l, Count: c})
	}
	sort.Slice(r.TopLabels, func(i, j int) bool {
		if r.TopLabels[i].Count != r.TopLabels[j].Count {
			return r.TopLabels[i].Count > r.TopLabels[j].Count
		}
		return r.TopLabels[i].Label < r.TopLabels[j].Label
	})
	if topN > 0 && len(r.TopLabels) > topN {
		r.TopLabels = r.TopLabels[:topN]
	}
	return r
}

// KeywordFrequencies reports the posting-list size of each word, sorted
// descending, limited to topN (0 = all).
func KeywordFrequencies(ix *index.Index, topN int) []LabelCount {
	var out []LabelCount
	for _, w := range ix.Words() {
		out = append(out, LabelCount{Label: w, Count: ix.Frequency(w)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// String renders the report as an aligned text block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes:        %d\n", r.Nodes)
	fmt.Fprintf(&b, "max depth:    %d (avg %.2f)\n", r.MaxDepth, r.AvgDepth)
	fmt.Fprintf(&b, "leaves:       %d\n", r.Leaves)
	fmt.Fprintf(&b, "max fan-out:  %d (avg %.2f)\n", r.MaxFanOut, r.AvgFanOut)
	fmt.Fprintf(&b, "labels:       %d\n", r.Labels)
	fmt.Fprintf(&b, "text nodes:   %d (total %d bytes)\n", r.TextNodes, r.TotalTextLen)
	if len(r.TopLabels) > 0 {
		b.WriteString("top labels:\n")
		for _, lc := range r.TopLabels {
			fmt.Fprintf(&b, "  %-20s %d\n", lc.Label, lc.Count)
		}
	}
	return b.String()
}
