package stats

import (
	"strings"
	"testing"

	"xks/internal/analysis"
	"xks/internal/datagen"
	"xks/internal/index"
	"xks/internal/paperdata"
	"xks/internal/xmltree"
)

func TestAnalyzePublications(t *testing.T) {
	tree := paperdata.Publications()
	r := Analyze(tree, 0)
	if r.Nodes != tree.Size() {
		t.Errorf("Nodes = %d, want %d", r.Nodes, tree.Size())
	}
	if r.MaxDepth != 5 {
		t.Errorf("MaxDepth = %d, want 5", r.MaxDepth)
	}
	if r.Labels != len(tree.SortedLabels()) {
		t.Errorf("Labels = %d", r.Labels)
	}
	sum := 0
	for _, c := range r.DepthCounts {
		sum += c
	}
	if sum != r.Nodes {
		t.Errorf("depth counts sum %d != nodes %d", sum, r.Nodes)
	}
	if r.DepthCounts[0] != 1 {
		t.Errorf("one root expected, got %d", r.DepthCounts[0])
	}
	if r.Leaves == 0 || r.Leaves >= r.Nodes {
		t.Errorf("Leaves = %d of %d", r.Leaves, r.Nodes)
	}
	if r.AvgDepth <= 0 || r.AvgDepth > float64(r.MaxDepth) {
		t.Errorf("AvgDepth = %v", r.AvgDepth)
	}
	if r.MaxFanOut < 3 { // Publications has 3 children
		t.Errorf("MaxFanOut = %d", r.MaxFanOut)
	}
	if r.TextNodes == 0 || r.TotalTextLen == 0 {
		t.Error("text statistics empty")
	}
}

func TestTopLabelsSortedAndLimited(t *testing.T) {
	tree := paperdata.Publications()
	r := Analyze(tree, 3)
	if len(r.TopLabels) != 3 {
		t.Fatalf("TopLabels = %d", len(r.TopLabels))
	}
	for i := 1; i < len(r.TopLabels); i++ {
		if r.TopLabels[i-1].Count < r.TopLabels[i].Count {
			t.Fatalf("TopLabels not sorted: %+v", r.TopLabels)
		}
	}
}

func TestKeywordFrequencies(t *testing.T) {
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 1, NumRecords: 50, Keywords: []datagen.KeywordSpec{
		{Word: "xml", Count: 9},
	}})
	ix := index.Build(tree, analysis.New())
	freqs := KeywordFrequencies(ix, 0)
	if len(freqs) == 0 {
		t.Fatal("no frequencies")
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i-1].Count < freqs[i].Count {
			t.Fatalf("not sorted at %d", i)
		}
	}
	found := false
	for _, f := range freqs {
		if f.Label == "xml" && f.Count == 9 {
			found = true
		}
	}
	if !found {
		t.Error("injected keyword frequency not reported")
	}
	limited := KeywordFrequencies(ix, 5)
	if len(limited) != 5 {
		t.Errorf("limit ignored: %d", len(limited))
	}
}

func TestReportString(t *testing.T) {
	r := Analyze(paperdata.Team(), 2)
	out := r.String()
	for _, want := range []string{"nodes:", "max depth:", "top labels:", "player"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeSingleNode(t *testing.T) {
	tree := xmltree.Build(xmltree.E{Label: "only"})
	r := Analyze(tree, 0)
	if r.Nodes != 1 || r.Leaves != 1 || r.MaxDepth != 0 || r.MaxFanOut != 0 {
		t.Errorf("single node report = %+v", r)
	}
}
