package store

import (
	"encoding/binary"
	"unsafe"

	"xks/internal/nid"
)

// hostLittleEndian reports whether the host stores multi-byte integers
// little-endian — the layout the v3 sections are written in. On such hosts
// (every platform this repo targets in practice) the fixed-width section
// arrays are reinterpreted in place; big-endian hosts fall back to a
// decoding copy, trading open time for portability.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u32view reinterprets b (length a multiple of 4) as []uint32 without
// copying when the host is little-endian and the data is 4-byte aligned
// (the v3 writer 8-aligns every section, so views over file sections
// always are); otherwise it decodes a copy.
func u32view(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// i32view is u32view for []int32.
func i32view(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// idView is u32view for []nid.ID (int32 underneath).
func idView(b []byte) []nid.ID {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*nid.ID)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]nid.ID, len(b)/4)
	for i := range out {
		out[i] = nid.ID(int32(binary.LittleEndian.Uint32(b[i*4:])))
	}
	return out
}

// stringView reinterprets b as a string without copying. The bytes must
// stay immutable and outlive the string — true for store sections, which
// are read-only mappings (or never-mutated heap buffers) pinned by the
// Store.
func stringView(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// appendU32sLE appends vals to dst in little-endian order (the v3 section
// writer's bulk array form).
func appendU32sLE(dst []byte, vals []uint32) []byte {
	var buf [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[:], v)
		dst = append(dst, buf[:]...)
	}
	return dst
}

// appendI32sLE appends int32 values to dst in little-endian order.
func appendI32sLE(dst []byte, vals []int32) []byte {
	var buf [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// appendIDsLE appends node IDs to dst in little-endian order.
func appendIDsLE(dst []byte, vals []nid.ID) []byte {
	var buf [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(buf[:], uint32(int32(v)))
		dst = append(dst, buf[:]...)
	}
	return dst
}
