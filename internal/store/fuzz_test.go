package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"xks/internal/analysis"
	"xks/internal/paperdata"
)

// FuzzLoad checks the binary readers — the v1/v2 row parser and the v3
// section-directory reader — never panic on corrupted input and either fail
// cleanly or return a structurally valid store.
func FuzzLoad(f *testing.F) {
	st := Shred(paperdata.Publications(), analysis.New())
	var v3buf, v2buf, v1buf bytes.Buffer
	if err := st.Save(&v3buf); err != nil {
		f.Fatal(err)
	}
	if err := st.save(&v2buf, versionV2); err != nil {
		f.Fatal(err)
	}
	if err := st.save(&v1buf, versionV1); err != nil {
		f.Fatal(err)
	}
	v3 := v3buf.Bytes()
	f.Add(v3)
	f.Add(v2buf.Bytes())
	f.Add(v1buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	// Targeted v3 seeds: truncations, a flipped section byte (CRC
	// mismatch), and directory corruptions with the header CRC recomputed
	// so they reach the per-section validation (misaligned offsets,
	// out-of-bounds lengths) instead of dying on the header checksum.
	dirEnd := 16 + 32*int(binary.LittleEndian.Uint32(v3[12:16]))
	corrupt := func(off int, x byte, fixHeader bool) []byte {
		c := append([]byte(nil), v3...)
		c[off] ^= x
		if fixHeader {
			binary.LittleEndian.PutUint32(c[dirEnd:], crc32.ChecksumIEEE(c[:dirEnd]))
		}
		return c
	}
	f.Add(v3[:len(v3)/2])
	f.Add(v3[:len(v3)-3])
	f.Add(v3[:dirEnd-16])
	f.Add(corrupt(len(v3)-5, 0x40, false)) // flip a late section byte
	f.Add(corrupt(dirEnd+8, 0x01, false))  // section byte under the CRC
	f.Add(corrupt(20, 0xAA, true))         // entry 0 CRC field
	f.Add(corrupt(24, 0x01, true))         // entry 0 offset → misaligned
	f.Add(corrupt(32, 0xFF, true))         // entry 0 length → out of bounds
	f.Add(corrupt(16+32*4+8, 0x7F, true))  // entry 4 offset
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded store must be self-consistent.
		if c := s.cols; c != nil {
			if s.NumNodes() != c.tab.Len() {
				t.Fatal("NumNodes inconsistent with node table")
			}
			for i, w := range c.terms {
				want := c.lists[i].Len()
				if want == 0 {
					t.Fatalf("keyword %q has an empty posting list", w)
				}
				// Varint payloads stay lazy behind the section CRC, so a
				// fuzzer that recomputes checksums can smuggle malformed
				// bytes past open; decode must then fail cleanly — never
				// panic, never return a partial list.
				if got := len(s.Postings(w)); got != 0 && got != want {
					t.Fatalf("keyword %q decodes to %d of %d postings", w, got, want)
				}
			}
			return
		}
		if s.NumNodes() != len(s.elements) {
			t.Fatal("NumNodes inconsistent with element table")
		}
		for _, w := range s.Keywords() {
			if len(s.Postings(w)) == 0 {
				t.Fatalf("keyword %q has empty postings", w)
			}
		}
	})
}
