package store

import (
	"bytes"
	"testing"

	"xks/internal/analysis"
	"xks/internal/paperdata"
)

// FuzzLoad checks the binary reader never panics on corrupted input and
// either fails cleanly or returns a structurally valid store.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := Shred(paperdata.Publications(), analysis.New()).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded store must be self-consistent.
		if s.NumNodes() != len(s.elements) {
			t.Fatal("NumNodes inconsistent with element table")
		}
		for _, w := range s.Keywords() {
			if len(s.Postings(w)) == 0 {
				t.Fatalf("keyword %q has empty postings", w)
			}
		}
	})
}
