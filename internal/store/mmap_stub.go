//go:build !unix

package store

import (
	"errors"
	"os"
)

// mmapSupported reports whether this build can map store files read-only.
// On platforms without a syscall.Mmap wrapper OpenFile falls back to the
// portable io.ReaderAt path: one read of the whole file into the heap.
const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("store: mmap is not supported on this platform")
}
