//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can map store files read-only.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared. The returned closer
// unmaps; the file descriptor itself may be closed immediately after mapping
// (the mapping keeps the pages alive).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
