package store

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"xks/internal/analysis"
	"xks/internal/index"
	"xks/internal/paperdata"
)

// A v2 file must round-trip the planner statistics exactly, and the loaded
// store must install them on BuildIndex without recomputation.
func TestStatsRoundTripV2(t *testing.T) {
	s := pubStore()
	want := s.Stats()
	if want.Nodes != s.NumNodes() || want.Postings != s.NumValues() {
		t.Fatalf("stats: Nodes=%d Postings=%d, want %d/%d",
			want.Nodes, want.Postings, s.NumNodes(), s.NumValues())
	}
	if want.Words == 0 || want.MaxPostings == 0 || want.AvgDepth <= 0 || want.AvgFanout <= 0 {
		t.Fatalf("degenerate stats: %+v", want)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.statsSet {
		t.Fatal("v2 load did not restore persisted statistics")
	}
	got := loaded.Stats()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats round trip:\n got %+v\nwant %+v", got, want)
	}
	if ixStats := loaded.BuildIndex(analysis.New()).Stats(); !reflect.DeepEqual(ixStats, want) {
		t.Fatalf("BuildIndex stats:\n got %+v\nwant %+v", ixStats, want)
	}
}

// The v1 reader must keep working: a file written at the old version loads,
// and statistics come back lazily recomputed with identical values.
func TestLoadV1Compat(t *testing.T) {
	s := pubStore()
	var buf bytes.Buffer
	if err := s.save(&buf, versionV1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("v1 file failed to load: %v", err)
	}
	if loaded.statsSet {
		t.Fatal("v1 load claims persisted statistics")
	}
	if loaded.NumNodes() != s.NumNodes() || loaded.NumValues() != s.NumValues() {
		t.Fatalf("v1 tables: %d/%d nodes/values, want %d/%d",
			loaded.NumNodes(), loaded.NumValues(), s.NumNodes(), s.NumValues())
	}
	if got, want := loaded.Stats(), s.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("v1 recomputed stats:\n got %+v\nwant %+v", got, want)
	}
}

// Store-side statistics (what v2 files persist) must agree with the
// index-side lazy scan: the planner must decide identically whether the
// engine came from FromTree or OpenStore.
func TestStoreStatsMatchIndexScan(t *testing.T) {
	tree := paperdata.Publications()
	s := Shred(tree, analysis.New())
	fromStore := s.Stats()
	fromIndex := index.Build(tree, analysis.New()).Stats()
	if fromStore.Nodes != fromIndex.Nodes ||
		fromStore.Words != fromIndex.Words ||
		fromStore.Postings != fromIndex.Postings ||
		fromStore.MaxPostings != fromIndex.MaxPostings ||
		fromStore.MaxDepth != fromIndex.MaxDepth {
		t.Fatalf("counts diverge:\n store %+v\n index %+v", fromStore, fromIndex)
	}
	if math.Abs(fromStore.AvgDepth-fromIndex.AvgDepth) > 1e-9 {
		t.Fatalf("AvgDepth: store %v, index %v", fromStore.AvgDepth, fromIndex.AvgDepth)
	}
	if math.Abs(fromStore.AvgFanout-fromIndex.AvgFanout) > 1e-9 {
		t.Fatalf("AvgFanout: store %v, index %v", fromStore.AvgFanout, fromIndex.AvgFanout)
	}
	if !reflect.DeepEqual(fromStore.DepthHist, fromIndex.DepthHist) {
		t.Fatalf("DepthHist: store %v, index %v", fromStore.DepthHist, fromIndex.DepthHist)
	}
}
