// Package store is the shredded-document storage layer: the embedded
// substitute for the PostgreSQL 8.2 instance of §5.2 of the paper.
//
// The paper shreds each XML document into three tables:
//
//	label   (label, ID)                                   — distinct labels
//	element (label, dewey, level, label number sequence,
//	         content feature)                             — one row per node
//	value   (label, dewey, attribute, keyword)            — keyword postings
//
// Store reproduces those tables as sorted in-memory columns with a binary
// on-disk format (magic header, version, CRC32-guarded sections) written
// and read with encoding/binary. Keyword lookups — the only query shape the
// algorithms issue — run off the value table's sorted keyword index exactly
// like the paper's SQL SELECTs, and the element table serves label /
// label-path / content-feature lookups by Dewey code.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/nid"
	"xks/internal/planner"
	"xks/internal/xmltree"
)

// ElementRow is one row of the element table.
type ElementRow struct {
	Dewey dewey.Code
	// LabelID indexes the label table.
	LabelID uint32
	// Level is the node depth (root = 0).
	Level uint16
	// LabelPath holds the label IDs from the root to the node — the
	// paper's "label number sequence", used to resolve ancestor labels
	// without the original document.
	LabelPath []uint32
	// CIDMin and CIDMax form the node's content feature.
	CIDMin, CIDMax string
}

// ValueRow is one row of the value table: one keyword occurrence.
type ValueRow struct {
	Keyword string
	Dewey   dewey.Code
	LabelID uint32
}

// Store holds the three shredded tables.
type Store struct {
	labels   []string          // ID → label
	labelIDs map[string]uint32 // label → ID
	elements []ElementRow      // sorted by Dewey pre-order
	values   []ValueRow        // sorted by (Keyword, Dewey)
	numNodes int

	// nodeWords/wordOff materialize the inverse view of the value table
	// lazily: words grouped per element row, so ContentAt(row) is a
	// zero-copy sub-slice. wordOff[i]..wordOff[i+1] bounds row i's words.
	nodeWordsOnce sync.Once
	nodeWords     []string
	wordOff       []int32

	// stats caches the planner statistics: restored from a v2 file on Load
	// (so opening a store plans without a rescan), computed lazily from the
	// tables otherwise. Guarded by statsOnce.
	statsOnce sync.Once
	stats     planner.Stats
	statsSet  bool

	// cols is non-nil for column-backed stores opened from a v3 file; its
	// slices (and labels above) are zero-copy views into data, which is
	// either a read-only file mapping (mapped, released by closer) or a
	// heap buffer holding one whole-file read. Row-backed stores leave all
	// four zero.
	cols     *v3cols
	data     []byte
	closer   func() error
	mapped   bool
	fileSize int64
}

// Shred builds the three tables from a document, analyzing content with the
// given analyzer (nil for the default).
func Shred(t *xmltree.Tree, an *analysis.Analyzer) *Store {
	if an == nil {
		an = analysis.New()
	}
	s := &Store{labelIDs: map[string]uint32{}}
	var path []uint32
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		id := s.internLabel(n.Label)
		path = append(path, id)
		words := an.ContentSet(n.ContentPieces()...)
		row := ElementRow{
			Dewey:     n.Code,
			LabelID:   id,
			Level:     uint16(n.Level()),
			LabelPath: append([]uint32(nil), path...),
		}
		for _, w := range words {
			if row.CIDMin == "" || w < row.CIDMin {
				row.CIDMin = w
			}
			if w > row.CIDMax {
				row.CIDMax = w
			}
			s.values = append(s.values, ValueRow{Keyword: w, Dewey: n.Code, LabelID: id})
		}
		s.elements = append(s.elements, row)
		s.numNodes++
		for _, c := range n.Children {
			walk(c)
		}
		path = path[:len(path)-1]
	}
	if t.Root != nil {
		walk(t.Root)
	}
	sort.Slice(s.values, func(i, j int) bool {
		if s.values[i].Keyword != s.values[j].Keyword {
			return s.values[i].Keyword < s.values[j].Keyword
		}
		return dewey.Compare(s.values[i].Dewey, s.values[j].Dewey) < 0
	})
	return s
}

func (s *Store) internLabel(l string) uint32 {
	if id, ok := s.labelIDs[l]; ok {
		return id
	}
	id := uint32(len(s.labels))
	s.labels = append(s.labels, l)
	s.labelIDs[l] = id
	return id
}

// NumNodes returns the number of element rows.
func (s *Store) NumNodes() int { return s.numNodes }

// NumLabels returns the number of distinct labels.
func (s *Store) NumLabels() int { return len(s.labels) }

// NumValues returns the number of keyword-occurrence rows.
func (s *Store) NumValues() int {
	if s.cols != nil {
		return len(s.cols.termIDs)
	}
	return len(s.values)
}

// Label resolves a label ID, or "" when out of range.
func (s *Store) Label(id uint32) string {
	if int(id) >= len(s.labels) {
		return ""
	}
	return s.labels[id]
}

// LabelID resolves a label to its ID.
func (s *Store) LabelID(label string) (uint32, bool) {
	id, ok := s.labelIDs[label]
	return id, ok
}

// Postings returns the pre-order-sorted Dewey codes of the nodes containing
// the keyword — the SQL "SELECT dewey FROM value WHERE keyword = ?" of the
// paper's getKeywordNodes.
func (s *Store) Postings(keyword string) []dewey.Code {
	if c := s.cols; c != nil {
		t, ok := c.findTerm(keyword)
		if !ok {
			return nil
		}
		ids, err := c.lists[t].Decode()
		if err != nil {
			return nil // unreachable behind the section CRCs
		}
		out := make([]dewey.Code, len(ids))
		for i, id := range ids {
			out[i] = c.tab.Code(id)
		}
		return out
	}
	lo := sort.Search(len(s.values), func(i int) bool { return s.values[i].Keyword >= keyword })
	var out []dewey.Code
	for i := lo; i < len(s.values) && s.values[i].Keyword == keyword; i++ {
		out = append(out, s.values[i].Dewey)
	}
	return out
}

// Element returns the element row for a Dewey code. On column-backed
// stores the row is synthesized from the node table and CSR columns.
func (s *Store) Element(c dewey.Code) (ElementRow, bool) {
	i, ok := s.elementIndex(c)
	if !ok {
		return ElementRow{}, false
	}
	if s.cols != nil {
		return s.colsRow(i), true
	}
	return s.elements[i], true
}

// LabelOf resolves a node's label directly from the element table.
func (s *Store) LabelOf(c dewey.Code) string {
	row, ok := s.Element(c)
	if !ok {
		return ""
	}
	return s.Label(row.LabelID)
}

// LabelAt resolves the label of the i-th element row (element rows are in
// pre-order, so the row index doubles as the node ID of the index built by
// BuildIndex). It returns "" when out of range.
func (s *Store) LabelAt(i int) string {
	if c := s.cols; c != nil {
		if i < 0 || i >= len(c.nodeLabels) {
			return ""
		}
		return s.Label(c.nodeLabels[i])
	}
	if i < 0 || i >= len(s.elements) {
		return ""
	}
	return s.Label(s.elements[i].LabelID)
}

// ElementAt returns the i-th element row.
func (s *Store) ElementAt(i int) (ElementRow, bool) {
	if s.cols != nil {
		if i < 0 || i >= s.numNodes {
			return ElementRow{}, false
		}
		return s.colsRow(i), true
	}
	if i < 0 || i >= len(s.elements) {
		return ElementRow{}, false
	}
	return s.elements[i], true
}

// elementIndex locates the element row for a Dewey code.
func (s *Store) elementIndex(c dewey.Code) (int, bool) {
	if s.cols != nil {
		id, ok := s.cols.tab.Find(c)
		return int(id), ok
	}
	i := sort.Search(len(s.elements), func(i int) bool {
		return dewey.Compare(s.elements[i].Dewey, c) >= 0
	})
	if i < len(s.elements) && dewey.Equal(s.elements[i].Dewey, c) {
		return i, true
	}
	return -1, false
}

// Keywords returns the distinct keywords in lexical order.
func (s *Store) Keywords() []string {
	if s.cols != nil {
		return append([]string(nil), s.cols.terms...)
	}
	var out []string
	for i := 0; i < len(s.values); {
		out = append(out, s.values[i].Keyword)
		j := i
		for j < len(s.values) && s.values[j].Keyword == s.values[i].Keyword {
			j++
		}
		i = j
	}
	return out
}

// BuildIndex assembles an inverted index from the value table, so searches
// can run off a loaded store without the original document. The index's
// node table is built from the element table (one node per row, pre-order),
// so its IDs equal element row indices and LabelAt/ContentAt serve label
// and content lookups by ID in constant time.
func (s *Store) BuildIndex(an *analysis.Analyzer) *index.Index {
	if c := s.cols; c != nil {
		// Column-backed: the index shares the store's node table and wraps
		// the compressed lists directly — per-term decode happens lazily on
		// first lookup, so building the index off a v3 open is O(vocabulary).
		ix := index.FromCompressed(c.tab, c.terms, c.lists, s.numNodes, an)
		ix.SetStats(s.Stats())
		return ix
	}
	tab := s.rowTable()
	postings := make(map[string][]nid.ID)
	for _, v := range s.values {
		if id, ok := tab.Find(v.Dewey); ok {
			postings[v.Keyword] = append(postings[v.Keyword], id)
		}
	}
	ix := index.FromIDPostings(tab, postings, s.numNodes, an)
	// Hand the index the store's statistics (persisted in v2+ files) so the
	// planner never rescans posting lists on the load path.
	ix.SetStats(s.Stats())
	return ix
}

// ContentOf returns the content word set of the node — the inverse view of
// the value table, materialized lazily on first use. Words come back in
// lexical order.
func (s *Store) ContentOf(c dewey.Code) []string {
	i, ok := s.elementIndex(c)
	if !ok {
		return nil
	}
	return s.ContentAt(i)
}

// ContentAt returns the content word set of the i-th element row as a
// zero-copy sub-slice of the lazily built per-row word table. Words come
// back in lexical order. Callers must not modify the result.
func (s *Store) ContentAt(i int) []string {
	s.nodeWordsOnce.Do(s.buildNodeWords)
	if i < 0 || i+1 >= len(s.wordOff) {
		return nil
	}
	return s.nodeWords[s.wordOff[i]:s.wordOff[i+1]]
}

func (s *Store) buildNodeWords() {
	if c := s.cols; c != nil {
		// Column-backed: the CSR already groups term IDs per node in
		// lexical order; materialize only the string headers.
		s.wordOff = make([]int32, len(c.wordOff))
		for i, o := range c.wordOff {
			s.wordOff[i] = int32(o)
		}
		s.nodeWords = make([]string, len(c.termIDs))
		for i, t := range c.termIDs {
			s.nodeWords[i] = c.terms[t]
		}
		return
	}
	// Count words per element row, then bucket them: the value table is
	// sorted by (keyword, dewey), so each row's bucket needs a final sort
	// to come out lexical.
	counts := make([]int32, len(s.elements)+1)
	rows := make([]int32, len(s.values))
	for i, v := range s.values {
		r, ok := s.elementIndex(v.Dewey)
		if !ok {
			rows[i] = -1
			continue
		}
		rows[i] = int32(r)
		counts[r+1]++
	}
	s.wordOff = counts
	for i := 1; i < len(s.wordOff); i++ {
		s.wordOff[i] += s.wordOff[i-1]
	}
	s.nodeWords = make([]string, len(s.values))
	fill := make([]int32, len(s.elements))
	for i, v := range s.values {
		r := rows[i]
		if r < 0 {
			continue
		}
		s.nodeWords[s.wordOff[r]+fill[r]] = v.Keyword
		fill[r]++
	}
	for r := 0; r < len(s.elements); r++ {
		bucket := s.nodeWords[s.wordOff[r]:s.wordOff[r+1]]
		sort.Strings(bucket)
	}
}

// statsDepthBuckets caps the persisted depth histogram; deeper postings
// fold into the last bucket (mirroring the index-side collection).
const statsDepthBuckets = 32

// Stats returns the planner statistics of the shredded document: restored
// from a v2 store file when present, computed from the tables otherwise
// (one pass over the value table plus parent lookups over the element
// table). BuildIndex installs them on the index it assembles, so a loaded
// store plans queries without rescanning posting lists.
func (s *Store) Stats() planner.Stats {
	s.statsOnce.Do(func() {
		if !s.statsSet {
			s.stats = s.computeStats()
			s.statsSet = true
		}
	})
	return s.stats
}

func (s *Store) computeStats() planner.Stats {
	st := planner.Stats{Nodes: len(s.elements), Docs: 1}
	var depthSum int64
	var hist [statsDepthBuckets]int64
	maxBucket := 0
	// The value table is sorted by (keyword, dewey): one pass yields the
	// vocabulary and per-list lengths.
	run := 0
	for i, v := range s.values {
		if i == 0 || v.Keyword != s.values[i-1].Keyword {
			st.Words++
			run = 0
		}
		run++
		if run > st.MaxPostings {
			st.MaxPostings = run
		}
		d := len(v.Dewey) - 1
		if d < 0 {
			d = 0
		}
		depthSum += int64(d)
		if d > st.MaxDepth {
			st.MaxDepth = d
		}
		b := min(d, statsDepthBuckets-1)
		hist[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	st.Postings = len(s.values)
	if st.Postings > 0 {
		st.AvgDepth = float64(depthSum) / float64(st.Postings)
		st.DepthHist = append([]int64(nil), hist[:maxBucket+1]...)
	}
	// Fanout from element-table parent lookups (pre-order rows).
	children := 0
	isParent := make([]bool, len(s.elements))
	for _, e := range s.elements {
		if len(e.Dewey) <= 1 {
			continue
		}
		if p, ok := s.elementIndex(e.Dewey[:len(e.Dewey)-1]); ok {
			children++
			isParent[p] = true
		}
	}
	internal := 0
	for _, b := range isParent {
		if b {
			internal++
		}
	}
	if internal > 0 {
		st.AvgFanout = float64(children) / float64(internal)
	}
	return st
}

// Children returns the element rows of the node's children in document
// order, used by store-backed fragment rendering.
func (s *Store) Children(c dewey.Code) []ElementRow {
	if cols := s.cols; cols != nil {
		id, ok := cols.tab.Find(c)
		if !ok {
			return nil
		}
		end := cols.tab.SubtreeEnd(id)
		d := cols.tab.Depth(id)
		var out []ElementRow
		for j := id + 1; j < end; j++ {
			if cols.tab.Depth(j) == d+1 {
				out = append(out, s.colsRow(int(j)))
			}
		}
		return out
	}
	i := sort.Search(len(s.elements), func(i int) bool {
		return dewey.Compare(s.elements[i].Dewey, c) > 0
	})
	var out []ElementRow
	for ; i < len(s.elements); i++ {
		d := s.elements[i].Dewey
		if !c.IsAncestorOf(d) {
			break
		}
		if len(d) == len(c)+1 {
			out = append(out, s.elements[i])
		}
	}
	return out
}

// ---- Binary persistence -------------------------------------------------

const (
	magic = "XKSSTORE"
	// versionV1 is the original format: label, element and value tables.
	versionV1 = uint32(1)
	// versionV2 appends a planner-statistics section after the value
	// table, so OpenStore plans queries without rescanning posting lists.
	// v1 files still load (statistics are then recomputed lazily).
	versionV2 = uint32(2)
	// versionV3 is the disk-native section format (see v3.go): node-table
	// columns and block-compressed postings behind a CRC-guarded section
	// directory, mmap-able read-only. v1/v2 files still load through the
	// row reader.
	versionV3 = uint32(3)
	// version is the format Save writes.
	version = versionV3
)

// Save writes the store to w in the binary table format (current version).
func (s *Store) Save(w io.Writer) error {
	return s.save(w, version)
}

// SaveLegacy writes the store in a superseded row format (1 or 2) —
// compatibility tooling for the upgrade tests and the cold-open benchmark,
// which needs real v2 images to measure the old parse path against. New
// files should use Save. Column-backed stores (loaded from v3) cannot be
// downgraded.
func (s *Store) SaveLegacy(w io.Writer, ver uint32) error {
	if ver != versionV1 && ver != versionV2 {
		return fmt.Errorf("store: SaveLegacy supports versions 1 and 2, not %d", ver)
	}
	return s.save(w, ver)
}

// save writes the store at an explicit format version; the v1/v2 arms exist
// so tests can pin backward compatibility of the reader.
func (s *Store) save(w io.Writer, ver uint32) error {
	if ver == versionV3 {
		return s.saveV3(w)
	}
	if s.cols != nil {
		return fmt.Errorf("store: cannot save a column-backed store as version %d", ver)
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return err
	}
	if err := writeU32(cw, ver); err != nil {
		return err
	}
	// Label table.
	if err := writeU32(cw, uint32(len(s.labels))); err != nil {
		return err
	}
	for _, l := range s.labels {
		if err := writeString(cw, l); err != nil {
			return err
		}
	}
	// Element table.
	if err := writeU32(cw, uint32(len(s.elements))); err != nil {
		return err
	}
	for _, e := range s.elements {
		if err := writeCode(cw, e.Dewey); err != nil {
			return err
		}
		if err := writeU32(cw, e.LabelID); err != nil {
			return err
		}
		if err := writeU32(cw, uint32(e.Level)); err != nil {
			return err
		}
		if err := writeU32(cw, uint32(len(e.LabelPath))); err != nil {
			return err
		}
		for _, id := range e.LabelPath {
			if err := writeU32(cw, id); err != nil {
				return err
			}
		}
		if err := writeString(cw, e.CIDMin); err != nil {
			return err
		}
		if err := writeString(cw, e.CIDMax); err != nil {
			return err
		}
	}
	// Value table.
	if err := writeU32(cw, uint32(len(s.values))); err != nil {
		return err
	}
	for _, v := range s.values {
		if err := writeString(cw, v.Keyword); err != nil {
			return err
		}
		if err := writeCode(cw, v.Dewey); err != nil {
			return err
		}
		if err := writeU32(cw, v.LabelID); err != nil {
			return err
		}
	}
	// Planner-statistics section (v2+).
	if ver >= 2 {
		if err := writeStats(cw, s.Stats()); err != nil {
			return err
		}
	}
	// Trailing checksum over everything written so far.
	if err := binary.Write(bw, binary.BigEndian, cw.sum); err != nil {
		return err
	}
	return bw.Flush()
}

func writeStats(w io.Writer, st planner.Stats) error {
	for _, v := range []uint32{
		uint32(st.Nodes), uint32(st.Words), uint32(st.Postings),
		uint32(st.MaxPostings), uint32(st.MaxDepth), uint32(st.Docs),
	} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	if err := writeU64(w, math.Float64bits(st.AvgDepth)); err != nil {
		return err
	}
	if err := writeU64(w, math.Float64bits(st.AvgFanout)); err != nil {
		return err
	}
	if err := writeU32(w, uint32(len(st.DepthHist))); err != nil {
		return err
	}
	for _, h := range st.DepthHist {
		if err := writeU64(w, uint64(h)); err != nil {
			return err
		}
	}
	return nil
}

func readStats(r io.Reader) (planner.Stats, error) {
	var st planner.Stats
	var u [6]uint32
	for i := range u {
		v, err := readU32(r)
		if err != nil {
			return st, err
		}
		u[i] = v
	}
	st.Nodes, st.Words, st.Postings = int(u[0]), int(u[1]), int(u[2])
	st.MaxPostings, st.MaxDepth, st.Docs = int(u[3]), int(u[4]), int(u[5])
	bits, err := readU64(r)
	if err != nil {
		return st, err
	}
	st.AvgDepth = math.Float64frombits(bits)
	if bits, err = readU64(r); err != nil {
		return st, err
	}
	st.AvgFanout = math.Float64frombits(bits)
	n, err := readU32(r)
	if err != nil {
		return st, err
	}
	if n > 1<<16 {
		return st, fmt.Errorf("store: depth histogram too long: %d", n)
	}
	if n > 0 {
		st.DepthHist = make([]int64, n)
		for i := range st.DepthHist {
			h, err := readU64(r)
			if err != nil {
				return st, err
			}
			st.DepthHist[i] = int64(h)
		}
	}
	return st, nil
}

// SaveFile writes the store to a file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a store written by Save, verifying magic, version and
// checksums. v3 streams are buffered whole and open column-backed (heap
// mode); v1/v2 streams parse through the row reader. Prefer OpenFile for
// files — it can map v3 sections instead of copying them.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	if head, err := br.Peek(12); err == nil && string(head[:8]) == magic &&
		binary.BigEndian.Uint32(head[8:12]) == versionV3 {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("store: reading v3 stream: %w", err)
		}
		return openV3FromBytes(data)
	}
	cr := &crcReader{r: br}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("store: bad magic %q", head)
	}
	ver, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	if ver != versionV1 && ver != versionV2 {
		return nil, fmt.Errorf("store: unsupported version %d", ver)
	}
	s := &Store{labelIDs: map[string]uint32{}}
	nLabels, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nLabels; i++ {
		l, err := readString(cr)
		if err != nil {
			return nil, err
		}
		s.labels = append(s.labels, l)
		s.labelIDs[l] = i
	}
	nElems, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nElems; i++ {
		var e ElementRow
		if e.Dewey, err = readCode(cr); err != nil {
			return nil, err
		}
		if e.LabelID, err = readU32(cr); err != nil {
			return nil, err
		}
		lvl, err := readU32(cr)
		if err != nil {
			return nil, err
		}
		e.Level = uint16(lvl)
		nPath, err := readU32(cr)
		if err != nil {
			return nil, err
		}
		if nPath > 1<<16 {
			return nil, fmt.Errorf("store: label path too long: %d", nPath)
		}
		e.LabelPath = make([]uint32, nPath)
		for j := range e.LabelPath {
			if e.LabelPath[j], err = readU32(cr); err != nil {
				return nil, err
			}
		}
		if e.CIDMin, err = readString(cr); err != nil {
			return nil, err
		}
		if e.CIDMax, err = readString(cr); err != nil {
			return nil, err
		}
		s.elements = append(s.elements, e)
	}
	s.numNodes = len(s.elements)
	nVals, err := readU32(cr)
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nVals; i++ {
		var v ValueRow
		if v.Keyword, err = readString(cr); err != nil {
			return nil, err
		}
		if v.Dewey, err = readCode(cr); err != nil {
			return nil, err
		}
		if v.LabelID, err = readU32(cr); err != nil {
			return nil, err
		}
		s.values = append(s.values, v)
	}
	if ver >= 2 {
		st, err := readStats(cr)
		if err != nil {
			return nil, err
		}
		s.stats = st
		s.statsSet = true
	}
	want := cr.sum
	var got uint32
	if err := binary.Read(br, binary.BigEndian, &got); err != nil {
		return nil, fmt.Errorf("store: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return s, nil
}

// LoadFile opens a store file with default options: v3 files come back
// mmap-backed where the platform allows (heap otherwise), v1/v2 files
// row-backed.
func LoadFile(path string) (*Store, error) {
	return OpenFile(path, OpenOptions{})
}

type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

type crcReader struct {
	r   io.Reader
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	return n, err
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[:]), nil
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("store: string too long: %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeCode(w io.Writer, c dewey.Code) error {
	if err := writeU32(w, uint32(len(c))); err != nil {
		return err
	}
	for _, v := range c {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	return nil
}

func readCode(r io.Reader) (dewey.Code, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, fmt.Errorf("store: dewey code too long: %d", n)
	}
	c := make(dewey.Code, n)
	for i := range c {
		if c[i], err = readU32(r); err != nil {
			return nil, err
		}
	}
	return c, nil
}
