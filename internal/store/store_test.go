package store

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/paperdata"
)

func pubStore() *Store {
	return Shred(paperdata.Publications(), analysis.New())
}

func TestShredCounts(t *testing.T) {
	s := pubStore()
	tree := paperdata.Publications()
	if s.NumNodes() != tree.Size() {
		t.Errorf("NumNodes = %d, want %d", s.NumNodes(), tree.Size())
	}
	if s.NumLabels() != len(tree.SortedLabels()) {
		t.Errorf("NumLabels = %d, want %d", s.NumLabels(), len(tree.SortedLabels()))
	}
	if s.NumValues() == 0 {
		t.Error("no value rows")
	}
}

func TestPostingsMatchIndex(t *testing.T) {
	s := pubStore()
	ix := index.Build(paperdata.Publications(), analysis.New())
	for _, w := range ix.Words() {
		fromIx := ix.Lookup(w)
		fromStore := s.Postings(w)
		if len(fromIx) != len(fromStore) {
			t.Fatalf("postings(%q): store %d vs index %d", w, len(fromStore), len(fromIx))
		}
		for i := range fromIx {
			if !dewey.Equal(fromIx[i], fromStore[i]) {
				t.Fatalf("postings(%q) differ at %d", w, i)
			}
		}
	}
	if s.Postings("zebra") != nil {
		t.Error("postings for absent keyword should be nil")
	}
}

func TestElementLookup(t *testing.T) {
	s := pubStore()
	row, ok := s.Element(dewey.MustParse("0.2.0.1"))
	if !ok {
		t.Fatal("element 0.2.0.1 missing")
	}
	if s.Label(row.LabelID) != "title" {
		t.Errorf("label = %q", s.Label(row.LabelID))
	}
	if row.Level != 3 {
		t.Errorf("level = %d", row.Level)
	}
	// Label path: Publications → Articles → article → title.
	wantPath := []string{"Publications", "Articles", "article", "title"}
	var gotPath []string
	for _, id := range row.LabelPath {
		gotPath = append(gotPath, s.Label(id))
	}
	if !reflect.DeepEqual(gotPath, wantPath) {
		t.Errorf("label path = %v, want %v", gotPath, wantPath)
	}
	if row.CIDMin == "" || row.CIDMax == "" || row.CIDMin > row.CIDMax {
		t.Errorf("content feature = (%q,%q)", row.CIDMin, row.CIDMax)
	}
	if _, ok := s.Element(dewey.MustParse("9.9")); ok {
		t.Error("absent element found")
	}
	if s.LabelOf(dewey.MustParse("0.2")) != "Articles" {
		t.Errorf("LabelOf = %q", s.LabelOf(dewey.MustParse("0.2")))
	}
	if s.LabelOf(dewey.MustParse("9.9")) != "" {
		t.Error("LabelOf absent should be empty")
	}
}

func TestLabelHelpers(t *testing.T) {
	s := pubStore()
	id, ok := s.LabelID("article")
	if !ok {
		t.Fatal("article label missing")
	}
	if s.Label(id) != "article" {
		t.Error("Label/LabelID not inverse")
	}
	if _, ok := s.LabelID("nonexistent"); ok {
		t.Error("absent label found")
	}
	if s.Label(9999) != "" {
		t.Error("out-of-range label should be empty")
	}
}

func TestKeywordsSorted(t *testing.T) {
	s := pubStore()
	ks := s.Keywords()
	if len(ks) == 0 {
		t.Fatal("no keywords")
	}
	for i := 1; i < len(ks); i++ {
		if ks[i-1] >= ks[i] {
			t.Fatalf("keywords not strictly sorted at %d: %v", i, ks[i-1:i+1])
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := pubStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != s.NumNodes() || back.NumLabels() != s.NumLabels() || back.NumValues() != s.NumValues() {
		t.Fatalf("counts differ after round trip: %d/%d/%d vs %d/%d/%d",
			back.NumNodes(), back.NumLabels(), back.NumValues(),
			s.NumNodes(), s.NumLabels(), s.NumValues())
	}
	for _, w := range s.Keywords() {
		a, b := s.Postings(w), back.Postings(w)
		if len(a) != len(b) {
			t.Fatalf("postings(%q) differ", w)
		}
		for i := range a {
			if !dewey.Equal(a[i], b[i]) {
				t.Fatalf("postings(%q)[%d] differ", w, i)
			}
		}
	}
	row, ok := back.Element(dewey.MustParse("0.2.0.1"))
	if !ok || back.Label(row.LabelID) != "title" {
		t.Error("element table corrupted by round trip")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := pubStore()
	path := filepath.Join(t.TempDir(), "pub.xks")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != s.NumNodes() {
		t.Error("file round trip lost nodes")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("LoadFile on absent path should fail")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s := pubStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted magic accepted")
	}

	// Flipped payload byte → checksum mismatch.
	bad = append([]byte{}, data...)
	bad[len(bad)/2] ^= 0x01
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Truncated file.
	if _, err := Load(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncated file accepted")
	}

	// Wrong version.
	bad = append([]byte{}, data...)
	bad[len(magic)+3] = 99
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("wrong version accepted")
	}

	// Empty input.
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBuildIndexFromStoreSearchesEqually(t *testing.T) {
	s := pubStore()
	an := analysis.New()
	fromStore := s.BuildIndex(an)
	fromTree := index.Build(paperdata.Publications(), an)
	_, setsA, errA := fromStore.KeywordSets(paperdata.Q3)
	_, setsB, errB := fromTree.KeywordSets(paperdata.Q3)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range setsA {
		if len(setsA[i]) != len(setsB[i]) {
			t.Fatalf("set %d sizes differ", i)
		}
		for j := range setsA[i] {
			if !dewey.Equal(setsA[i][j], setsB[i][j]) {
				t.Fatalf("set %d posting %d differs", i, j)
			}
		}
	}
}

func TestShredNilAnalyzer(t *testing.T) {
	s := Shred(paperdata.Team(), nil)
	if got := len(s.Postings("gassol")); got != 1 {
		t.Errorf("postings(gassol) = %d", got)
	}
}

func BenchmarkShred(b *testing.B) {
	tree := paperdata.Publications()
	an := analysis.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Shred(tree, an)
	}
}

func BenchmarkSaveLoad(b *testing.B) {
	s := pubStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestChildren(t *testing.T) {
	s := pubStore()
	kids := s.Children(dewey.MustParse("0"))
	if len(kids) != 3 {
		t.Fatalf("root children = %d, want 3", len(kids))
	}
	wantLabels := []string{"title", "year", "Articles"}
	for i, k := range kids {
		if s.Label(k.LabelID) != wantLabels[i] {
			t.Errorf("child %d label = %q, want %q", i, s.Label(k.LabelID), wantLabels[i])
		}
	}
	// Depth-2 lookup skips grandchildren.
	arts := s.Children(dewey.MustParse("0.2"))
	if len(arts) != 2 || s.Label(arts[0].LabelID) != "article" {
		t.Errorf("Articles children = %v", arts)
	}
	if got := s.Children(dewey.MustParse("0.0")); len(got) != 0 {
		t.Errorf("leaf children = %d", len(got))
	}
	if got := s.Children(dewey.MustParse("9.9")); len(got) != 0 {
		t.Errorf("absent node children = %d", len(got))
	}
}

func TestContentOf(t *testing.T) {
	s := pubStore()
	words := s.ContentOf(dewey.MustParse("0.0"))
	if len(words) != 2 || words[0] != "title" || words[1] != "vldb" {
		t.Errorf("ContentOf(0.0) = %v", words)
	}
	if got := s.ContentOf(dewey.MustParse("9.9")); got != nil {
		t.Errorf("ContentOf absent = %v", got)
	}
	// Lazy index is stable across calls.
	again := s.ContentOf(dewey.MustParse("0.0"))
	if len(again) != 2 {
		t.Errorf("second ContentOf = %v", again)
	}
}

// failWriter errors after n bytes, exercising every Save error branch.
type failWriter struct {
	n     int
	limit int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n+len(p) > f.limit {
		allowed := f.limit - f.n
		if allowed < 0 {
			allowed = 0
		}
		f.n += allowed
		return allowed, errFull
	}
	f.n += len(p)
	return len(p), nil
}

var errFull = bytes.ErrTooLarge

func TestSaveWriterFailuresAtEveryOffset(t *testing.T) {
	s := pubStore()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Len()
	// Failing at a sample of offsets across the file must always surface an
	// error, never a silent truncation.
	for _, limit := range []int{0, 4, len(magic), len(magic) + 2, full / 4, full / 2, full - 5} {
		if err := s.Save(&failWriter{limit: limit}); err == nil {
			t.Errorf("Save with writer failing at %d bytes reported success", limit)
		}
	}
}

func TestSaveFileUnwritablePath(t *testing.T) {
	s := pubStore()
	if err := s.SaveFile(filepath.Join(t.TempDir(), "missing-dir", "x.xks")); err == nil {
		t.Error("SaveFile into missing directory should fail")
	}
}

func TestLoadOversizedFieldsRejected(t *testing.T) {
	// Craft a header claiming a preposterous string length: magic + version
	// + label count 1 + string length 2^30.
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.Write([]byte{0, 0, 0, 1})    // version
	buf.Write([]byte{0, 0, 0, 1})    // one label
	buf.Write([]byte{0x40, 0, 0, 0}) // string length 2^30
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("oversized string length accepted")
	}
}
