package store

// Format v3 — the disk-native layout.
//
// v1/v2 files are row streams: every open re-parses each element and value
// row into heap structures, so open time and resident memory scale with the
// corpus. v3 instead persists the query-time representation directly —
// the nid.Table columns (parent/depth/offset plus the shared Dewey arena)
// and block-compressed posting lists (internal/postings) — as aligned,
// CRC-guarded sections behind a section directory:
//
//	offset 0   magic "XKSSTORE"                  (8 bytes, shared with v1/v2)
//	offset 8   version u32 big-endian = 3        (shared dispatch point)
//	offset 12  section count u32 little-endian
//	offset 16  directory: 32-byte entries {id u32, crc32 u32, off u64,
//	           len u64, reserved u64}, little-endian
//	then       header crc32 u32 LE over bytes [0, end of directory)
//	then       sections, each starting on an 8-byte boundary, zero-padded
//
// Every section offset is 8-aligned so the fixed-width arrays inside can be
// reinterpreted in place (cast.go) when the file is mmap-ed: opening a v3
// store validates directory bounds, per-section CRCs and the structural
// invariants of each section, but copies no node columns and decodes no
// posting list. All multi-byte values inside sections are little-endian;
// the stats section reuses the big-endian v2 encoding verbatim.
//
// Section payloads (ids secLabels..secStats below):
//
//	labels     u32 count, then per label {u32 len, bytes}
//	nodes      u32 n, u32 arenaLen, parent i32[n], depth i32[n],
//	           off u32[n], arena u32[arenaLen]
//	labelids   u32[n] — element-table label column, node-ID order
//	terms      u32 count, u32 blobLen, offs u32[count+1], blob bytes
//	           (terms strictly increasing; term i = blob[offs[i]:offs[i+1]])
//	postings   u32 count, u32 reserved, offs u32[count+1], concatenated
//	           postings.Encode blobs (list i = blob[offs[i]:offs[i+1]])
//	nodewords  u32 n, u32 total, wordOff u32[n+1], termIDs u32[total] —
//	           CSR of each node's term IDs, ascending per node
//	stats      planner statistics, v2 writeStats encoding

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"xks/internal/dewey"
	"xks/internal/nid"
	"xks/internal/postings"
)

// Section IDs of the v3 directory. Unknown IDs are ignored on open, so
// future versions can add sections without breaking this reader.
const (
	secLabels    = uint32(1)
	secNodes     = uint32(2)
	secLabelIDs  = uint32(3)
	secTerms     = uint32(4)
	secPostings  = uint32(5)
	secNodeWords = uint32(6)
	secStats     = uint32(7)
)

// maxSections bounds the directory a reader will parse; the writer emits 7.
const maxSections = 64

// v3cols is the column-oriented store representation backing a v3 file:
// zero-copy views into the store's data buffer (mmap-ed or heap-loaded).
// Element and value rows are synthesized from it on demand.
type v3cols struct {
	tab        *nid.Table
	nodeLabels []uint32        // per node, indexes Store.labels
	terms      []string        // sorted vocabulary, views into the blob
	lists      []postings.List // lists[i] is terms[i]'s compressed postings
	wordOff    []uint32        // CSR: node i's terms are termIDs[wordOff[i]:wordOff[i+1]]
	termIDs    []uint32
}

// OpenMode selects how OpenFile backs a store's memory.
type OpenMode int

const (
	// OpenAuto maps v3 files read-only when the platform supports it,
	// falling back to a single whole-file read into the heap; v1/v2 files
	// load through the row reader.
	OpenAuto OpenMode = iota
	// OpenMmap requires a memory-mapped v3 file and fails otherwise.
	OpenMmap
	// OpenHeap forces the heap path even when mmap is available.
	OpenHeap
)

// OpenOptions configures OpenFile.
type OpenOptions struct {
	Mode OpenMode
}

// OpenFile opens a store file, dispatching on its format version. v3 files
// open column-backed — mmap-ed read-only under OpenAuto/OpenMmap, or loaded
// with one whole-file read under OpenHeap (and on platforms without mmap) —
// decoding no posting list eagerly. v1/v2 files load through the row reader.
func OpenFile(path string, opts OpenOptions) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	var head [12]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if string(head[:8]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", head[:8])
	}
	ver := binary.BigEndian.Uint32(head[8:12])
	if ver != versionV3 {
		if opts.Mode == OpenMmap {
			return nil, fmt.Errorf("store: version %d files are row-encoded and cannot be mapped; re-save to upgrade", ver)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		s, err := Load(f)
		if err != nil {
			return nil, err
		}
		s.fileSize = size
		return s, nil
	}
	if opts.Mode == OpenMmap && !mmapSupported {
		return nil, fmt.Errorf("store: mmap requested but not supported on this platform")
	}
	if mmapSupported && opts.Mode != OpenHeap && size > 0 {
		data, closer, err := mmapFile(f, size)
		if err != nil {
			if opts.Mode == OpenMmap {
				return nil, fmt.Errorf("store: mmap: %w", err)
			}
			// Auto mode: fall through to the heap path.
		} else {
			s, err := openV3FromBytes(data)
			if err != nil {
				closer()
				return nil, err
			}
			s.closer, s.mapped = closer, true
			return s, nil
		}
	}
	// Portable fallback: one io.ReaderAt pass over the whole file.
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, fmt.Errorf("store: reading file: %w", err)
	}
	return openV3FromBytes(data)
}

// Mode describes how this store is backed: "rows" (v1/v2 heap structures),
// "v3-heap" (column sections in one heap buffer) or "v3-mmap" (column
// sections in a read-only file mapping).
func (s *Store) Mode() string {
	switch {
	case s.cols == nil:
		return "rows"
	case s.mapped:
		return "v3-mmap"
	default:
		return "v3-heap"
	}
}

// MappedBytes returns the size of the read-only file mapping backing this
// store, or 0 when it is heap-backed.
func (s *Store) MappedBytes() int64 {
	if s.mapped {
		return int64(len(s.data))
	}
	return 0
}

// FileBytes returns the on-disk size of the file this store was opened
// from, or 0 when it was built in memory or read from a stream.
func (s *Store) FileBytes() int64 { return s.fileSize }

// Close releases the store's file mapping, if any. Every view handed out by
// a mapped store — codes, labels, keywords, posting lists and any index
// built from it — becomes invalid after Close. Heap-backed and row-backed
// stores close as a no-op. Close is not safe to call concurrently with
// queries.
func (s *Store) Close() error {
	c := s.closer
	s.closer = nil
	if c != nil {
		return c()
	}
	return nil
}

// ---- v3 writer ----------------------------------------------------------

func appendU32LE(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

// saveV3 writes the store in format v3, building the column form from the
// row tables when the store was shredded or row-loaded, or re-serializing
// the existing columns (without decoding any posting list) when it is
// already column-backed.
func (s *Store) saveV3(w io.Writer) error {
	var (
		tab        *nid.Table
		nodeLabels []uint32
		terms      []string
		postBlob   []byte
		postOffs   []uint32
		wordOff    []uint32
		termIDs    []uint32
	)
	if c := s.cols; c != nil {
		tab, nodeLabels, terms = c.tab, c.nodeLabels, c.terms
		wordOff, termIDs = c.wordOff, c.termIDs
		postOffs = make([]uint32, len(c.lists)+1)
		for i, l := range c.lists {
			postBlob = l.AppendBytes(postBlob)
			postOffs[i+1] = uint32(len(postBlob))
		}
	} else {
		tab = s.rowTable()
		n := tab.Len()
		nodeLabels = make([]uint32, n)
		for _, e := range s.elements {
			if id, ok := tab.Find(e.Dewey); ok {
				nodeLabels[id] = e.LabelID
			}
		}
		// The value table is sorted by (keyword, dewey) and the table is in
		// Dewey pre-order, so each keyword run maps to an increasing ID
		// list. Duplicate rows (possible only in hand-crafted files) and
		// rows whose code is missing from the element table are dropped,
		// matching BuildIndex.
		var idLists [][]nid.ID
		for i := 0; i < len(s.values); {
			kw := s.values[i].Keyword
			var ids []nid.ID
			j := i
			for ; j < len(s.values) && s.values[j].Keyword == kw; j++ {
				if id, ok := tab.Find(s.values[j].Dewey); ok {
					if len(ids) > 0 && id <= ids[len(ids)-1] {
						continue
					}
					ids = append(ids, id)
				}
			}
			if len(ids) > 0 {
				terms = append(terms, kw)
				idLists = append(idLists, ids)
			}
			i = j
		}
		postOffs = make([]uint32, len(idLists)+1)
		for i, ids := range idLists {
			postBlob = postings.AppendEncode(postBlob, ids)
			postOffs[i+1] = uint32(len(postBlob))
		}
		// Node→terms CSR, filled term-major so each node's term IDs come
		// out ascending (and, terms being sorted, its words lexical).
		wordOff = make([]uint32, n+1)
		for _, ids := range idLists {
			for _, id := range ids {
				wordOff[id+1]++
			}
		}
		for i := 1; i <= n; i++ {
			wordOff[i] += wordOff[i-1]
		}
		termIDs = make([]uint32, wordOff[n])
		fill := make([]uint32, n)
		for t, ids := range idLists {
			for _, id := range ids {
				termIDs[wordOff[id]+fill[id]] = uint32(t)
				fill[id]++
			}
		}
	}

	// Assemble section payloads.
	labelsSec := appendU32LE(nil, uint32(len(s.labels)))
	for _, l := range s.labels {
		labelsSec = appendU32LE(labelsSec, uint32(len(l)))
		labelsSec = append(labelsSec, l...)
	}

	parent, depth, off, arena := tab.Columns()
	nodesSec := appendU32LE(nil, uint32(tab.Len()))
	nodesSec = appendU32LE(nodesSec, uint32(len(arena)))
	nodesSec = appendIDsLE(nodesSec, parent)
	nodesSec = appendI32sLE(nodesSec, depth)
	nodesSec = appendU32sLE(nodesSec, off)
	nodesSec = appendU32sLE(nodesSec, arena)

	labelIDsSec := appendU32sLE(nil, nodeLabels)

	var termBlob []byte
	termOffs := make([]uint32, len(terms)+1)
	for i, t := range terms {
		termBlob = append(termBlob, t...)
		termOffs[i+1] = uint32(len(termBlob))
	}
	termsSec := appendU32LE(nil, uint32(len(terms)))
	termsSec = appendU32LE(termsSec, uint32(len(termBlob)))
	termsSec = appendU32sLE(termsSec, termOffs)
	termsSec = append(termsSec, termBlob...)

	postSec := appendU32LE(nil, uint32(len(postOffs)-1))
	postSec = appendU32LE(postSec, 0)
	postSec = appendU32sLE(postSec, postOffs)
	postSec = append(postSec, postBlob...)

	wordsSec := appendU32LE(nil, uint32(len(wordOff)-1))
	wordsSec = appendU32LE(wordsSec, uint32(len(termIDs)))
	wordsSec = appendU32sLE(wordsSec, wordOff)
	wordsSec = appendU32sLE(wordsSec, termIDs)

	var statsBuf bytes.Buffer
	if err := writeStats(&statsBuf, s.Stats()); err != nil {
		return err
	}

	secs := []struct {
		id   uint32
		data []byte
	}{
		{secLabels, labelsSec},
		{secNodes, nodesSec},
		{secLabelIDs, labelIDsSec},
		{secTerms, termsSec},
		{secPostings, postSec},
		{secNodeWords, wordsSec},
		{secStats, statsBuf.Bytes()},
	}

	// Header: magic + BE version, LE count, directory, header CRC, padding.
	dirEnd := 16 + 32*len(secs)
	header := make([]byte, 0, dirEnd+4)
	header = append(header, magic...)
	header = binary.BigEndian.AppendUint32(header, versionV3)
	header = appendU32LE(header, uint32(len(secs)))
	pos := uint64(align8(dirEnd + 4))
	for _, sec := range secs {
		header = appendU32LE(header, sec.id)
		header = appendU32LE(header, crc32.ChecksumIEEE(sec.data))
		header = binary.LittleEndian.AppendUint64(header, pos)
		header = binary.LittleEndian.AppendUint64(header, uint64(len(sec.data)))
		header = binary.LittleEndian.AppendUint64(header, 0)
		pos = uint64(align8(int(pos) + len(sec.data)))
	}
	header = appendU32LE(header, crc32.ChecksumIEEE(header[:dirEnd]))

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	written := len(header)
	var pad [8]byte
	for _, sec := range secs {
		if p := align8(written) - written; p > 0 {
			if _, err := bw.Write(pad[:p]); err != nil {
				return err
			}
			written += p
		}
		if _, err := bw.Write(sec.data); err != nil {
			return err
		}
		written += len(sec.data)
	}
	return bw.Flush()
}

func align8(n int) int { return (n + 7) &^ 7 }

// rowTable builds the nid.Table of a row-backed store from its element
// table (one node per row, pre-order).
func (s *Store) rowTable() *nid.Table {
	sorted := sort.SliceIsSorted(s.elements, func(i, j int) bool {
		return dewey.Compare(s.elements[i].Dewey, s.elements[j].Dewey) < 0
	})
	if sorted {
		b := nid.NewBuilder(len(s.elements))
		for _, e := range s.elements {
			b.Add(e.Dewey)
		}
		return b.Table()
	}
	// Defensive: a hand-crafted store file may carry an unsorted element
	// table; fall back to the sorting constructor. (Row-index ID lookups
	// stay coherent only for well-formed stores.)
	codes := make([]dewey.Code, len(s.elements))
	for i, e := range s.elements {
		codes[i] = e.Dewey
	}
	return nid.FromCodes(codes)
}

// ---- v3 reader ----------------------------------------------------------

// openV3FromBytes validates a v3 image and returns a column-backed Store
// whose views alias data. The caller owns data's lifetime (heap buffer or
// file mapping); openV3FromBytes never retains it on error. Validation
// covers everything memory safety relies on — directory bounds, section
// CRCs, column invariants, offset monotonicity, ID ranges — so corrupted
// or adversarial bytes fail with an error, never a panic, and a store that
// opens cleanly can be queried without further bounds anxiety. No posting
// list is decoded.
func openV3FromBytes(data []byte) (*Store, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("store: v3 file too short: %d bytes", len(data))
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("store: bad magic %q", data[:8])
	}
	if v := binary.BigEndian.Uint32(data[8:12]); v != versionV3 {
		return nil, fmt.Errorf("store: not a v3 file (version %d)", v)
	}
	count := binary.LittleEndian.Uint32(data[12:16])
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("store: implausible section count %d", count)
	}
	dirEnd := 16 + 32*int(count)
	if dirEnd+4 > len(data) {
		return nil, fmt.Errorf("store: truncated section directory")
	}
	if got := binary.LittleEndian.Uint32(data[dirEnd:]); got != crc32.ChecksumIEEE(data[:dirEnd]) {
		return nil, fmt.Errorf("store: header checksum mismatch")
	}
	secs := make(map[uint32][]byte, count)
	minOff := uint64(align8(dirEnd + 4))
	for i := 0; i < int(count); i++ {
		e := data[16+32*i:]
		id := binary.LittleEndian.Uint32(e)
		crc := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 {
			return nil, fmt.Errorf("store: section %d misaligned at offset %d", id, off)
		}
		if off < minOff || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("store: section %d out of bounds (off %d, len %d)", id, off, length)
		}
		sec := data[off : off+length]
		if crc32.ChecksumIEEE(sec) != crc {
			return nil, fmt.Errorf("store: section %d checksum mismatch", id)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("store: duplicate section %d", id)
		}
		secs[id] = sec
	}
	need := func(id uint32, name string) ([]byte, error) {
		sec, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("store: missing %s section", name)
		}
		return sec, nil
	}

	// Labels.
	sec, err := need(secLabels, "labels")
	if err != nil {
		return nil, err
	}
	if len(sec) < 4 {
		return nil, fmt.Errorf("store: truncated labels section")
	}
	nLabels := binary.LittleEndian.Uint32(sec)
	if uint64(nLabels)*4 > uint64(len(sec)) {
		return nil, fmt.Errorf("store: implausible label count %d", nLabels)
	}
	labels := make([]string, 0, nLabels)
	labelMap := make(map[string]uint32, nLabels)
	cursor := 4
	for i := uint32(0); i < nLabels; i++ {
		if cursor+4 > len(sec) {
			return nil, fmt.Errorf("store: truncated labels section at label %d", i)
		}
		l := int(binary.LittleEndian.Uint32(sec[cursor:]))
		cursor += 4
		if l < 0 || l > len(sec)-cursor {
			return nil, fmt.Errorf("store: label %d overruns section", i)
		}
		lab := stringView(sec[cursor : cursor+l])
		cursor += l
		labels = append(labels, lab)
		labelMap[lab] = i
	}

	// Nodes → nid.Table (zero-copy columns).
	sec, err = need(secNodes, "nodes")
	if err != nil {
		return nil, err
	}
	if len(sec) < 8 {
		return nil, fmt.Errorf("store: truncated nodes section")
	}
	n := binary.LittleEndian.Uint32(sec)
	arenaLen := binary.LittleEndian.Uint32(sec[4:])
	if uint64(len(sec)) != 8+12*uint64(n)+4*uint64(arenaLen) {
		return nil, fmt.Errorf("store: nodes section length %d inconsistent with n=%d arena=%d", len(sec), n, arenaLen)
	}
	p := sec[8:]
	parent := idView(p[:4*n])
	depth := i32view(p[4*n : 8*n])
	offCol := u32view(p[8*n : 12*n])
	arena := u32view(p[12*n:])
	tab, err := nid.FromColumns(parent, depth, offCol, arena)
	if err != nil {
		return nil, fmt.Errorf("store: nodes section: %w", err)
	}

	// Per-node label IDs.
	sec, err = need(secLabelIDs, "labelids")
	if err != nil {
		return nil, err
	}
	if uint64(len(sec)) != 4*uint64(n) {
		return nil, fmt.Errorf("store: labelids section length %d, want %d", len(sec), 4*n)
	}
	nodeLabels := u32view(sec)
	for i, id := range nodeLabels {
		if id >= nLabels {
			return nil, fmt.Errorf("store: node %d references label %d of %d", i, id, nLabels)
		}
	}

	// Terms.
	sec, err = need(secTerms, "terms")
	if err != nil {
		return nil, err
	}
	if len(sec) < 8 {
		return nil, fmt.Errorf("store: truncated terms section")
	}
	tcount := binary.LittleEndian.Uint32(sec)
	blobLen := binary.LittleEndian.Uint32(sec[4:])
	if uint64(len(sec)) != 8+4*(uint64(tcount)+1)+uint64(blobLen) {
		return nil, fmt.Errorf("store: terms section length %d inconsistent with count=%d blob=%d", len(sec), tcount, blobLen)
	}
	termOffs := u32view(sec[8 : 8+4*(int(tcount)+1)])
	termBlob := sec[8+4*(int(tcount)+1):]
	if termOffs[0] != 0 || termOffs[tcount] != blobLen {
		return nil, fmt.Errorf("store: terms offsets do not span the blob")
	}
	terms := make([]string, tcount)
	for i := uint32(0); i < tcount; i++ {
		if termOffs[i+1] < termOffs[i] {
			return nil, fmt.Errorf("store: terms offsets decrease at %d", i)
		}
		t := stringView(termBlob[termOffs[i]:termOffs[i+1]])
		if i > 0 && t <= terms[i-1] {
			return nil, fmt.Errorf("store: terms not strictly sorted at %d", i)
		}
		terms[i] = t
	}

	// Postings: per-term lazy views; skip tables validated, payloads not.
	sec, err = need(secPostings, "postings")
	if err != nil {
		return nil, err
	}
	if len(sec) < 8 {
		return nil, fmt.Errorf("store: truncated postings section")
	}
	pcount := binary.LittleEndian.Uint32(sec)
	if pcount != tcount {
		return nil, fmt.Errorf("store: %d posting lists for %d terms", pcount, tcount)
	}
	if uint64(len(sec)) < 8+4*(uint64(pcount)+1) {
		return nil, fmt.Errorf("store: truncated postings offsets")
	}
	postOffs := u32view(sec[8 : 8+4*(int(pcount)+1)])
	postBlob := sec[8+4*(int(pcount)+1):]
	if postOffs[0] != 0 || uint64(postOffs[pcount]) != uint64(len(postBlob)) {
		return nil, fmt.Errorf("store: postings offsets do not span the blob")
	}
	lists := make([]postings.List, pcount)
	for i := uint32(0); i < pcount; i++ {
		if postOffs[i+1] < postOffs[i] {
			return nil, fmt.Errorf("store: postings offsets decrease at %d", i)
		}
		l, err := postings.FromBytes(postBlob[postOffs[i]:postOffs[i+1]])
		if err != nil {
			return nil, fmt.Errorf("store: posting list %d (%q): %w", i, terms[i], err)
		}
		if l.EncodedLen() != int(postOffs[i+1]-postOffs[i]) {
			return nil, fmt.Errorf("store: posting list %d (%q) has trailing bytes", i, terms[i])
		}
		if l.Len() == 0 {
			// The writer drops postings-less terms, so an empty list marks
			// corruption; rejecting it keeps "every keyword matches
			// something" an invariant of opened stores.
			return nil, fmt.Errorf("store: posting list %d (%q) is empty", i, terms[i])
		}
		lists[i] = l
	}

	// Node→terms CSR.
	sec, err = need(secNodeWords, "nodewords")
	if err != nil {
		return nil, err
	}
	if len(sec) < 8 {
		return nil, fmt.Errorf("store: truncated nodewords section")
	}
	wn := binary.LittleEndian.Uint32(sec)
	total := binary.LittleEndian.Uint32(sec[4:])
	if wn != n {
		return nil, fmt.Errorf("store: nodewords covers %d nodes of %d", wn, n)
	}
	if uint64(len(sec)) != 8+4*(uint64(wn)+1)+4*uint64(total) {
		return nil, fmt.Errorf("store: nodewords section length %d inconsistent with n=%d total=%d", len(sec), wn, total)
	}
	wordOff := u32view(sec[8 : 8+4*(int(wn)+1)])
	termIDs := u32view(sec[8+4*(int(wn)+1):])
	if wordOff[0] != 0 || wordOff[wn] != total {
		return nil, fmt.Errorf("store: nodewords offsets do not span the term IDs")
	}
	for i := uint32(0); i < wn; i++ {
		if wordOff[i+1] < wordOff[i] {
			return nil, fmt.Errorf("store: nodewords offsets decrease at %d", i)
		}
	}
	for i, id := range termIDs {
		if id >= tcount {
			return nil, fmt.Errorf("store: nodewords entry %d references term %d of %d", i, id, tcount)
		}
	}

	// Statistics (mandatory in v3, so opening never rescans postings).
	sec, err = need(secStats, "stats")
	if err != nil {
		return nil, err
	}
	st, err := readStats(bytes.NewReader(sec))
	if err != nil {
		return nil, fmt.Errorf("store: stats section: %w", err)
	}

	s := &Store{
		labels:   labels,
		labelIDs: labelMap,
		numNodes: int(n),
		cols: &v3cols{
			tab:        tab,
			nodeLabels: nodeLabels,
			terms:      terms,
			lists:      lists,
			wordOff:    wordOff,
			termIDs:    termIDs,
		},
		data:     data,
		fileSize: int64(len(data)),
	}
	s.stats = st
	s.statsSet = true
	return s, nil
}

// ---- column-backed row synthesis ----------------------------------------

// findTerm locates a keyword in the sorted vocabulary.
func (c *v3cols) findTerm(keyword string) (int, bool) {
	i := sort.SearchStrings(c.terms, keyword)
	if i < len(c.terms) && c.terms[i] == keyword {
		return i, true
	}
	return 0, false
}

// colsTermAt returns node i's j-th (lexically ordered) content word.
func (c *v3cols) termAt(i, j int) string {
	return c.terms[c.termIDs[c.wordOff[i]+uint32(j)]]
}

// colsRow synthesizes the element row for node i from the columns: the
// Dewey code and label path come from parent-chain walks, the content
// feature from the node's first and last (lexically ordered) words.
func (s *Store) colsRow(i int) ElementRow {
	c := s.cols
	id := nid.ID(i)
	d := c.tab.Depth(id)
	row := ElementRow{
		Dewey:     c.tab.Code(id),
		LabelID:   c.nodeLabels[i],
		Level:     uint16(d),
		LabelPath: make([]uint32, d+1),
	}
	for a := id; a != nid.None; a = c.tab.Parent(a) {
		row.LabelPath[c.tab.Depth(a)] = c.nodeLabels[a]
	}
	if nWords := int(c.wordOff[i+1] - c.wordOff[i]); nWords > 0 {
		row.CIDMin = c.termAt(i, 0)
		row.CIDMax = c.termAt(i, nWords-1)
	}
	return row
}
