package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/paperdata"
)

func shredPaper(t *testing.T) *Store {
	t.Helper()
	return Shred(paperdata.Publications(), analysis.New())
}

// assertSameSurface pins the full public query surface of b to a: labels,
// vocabulary, postings, element rows (including synthesized ones), content
// sets, children and statistics.
func assertSameSurface(t *testing.T, a, b *Store) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumLabels() != b.NumLabels() || a.NumValues() != b.NumValues() {
		t.Fatalf("size mismatch: nodes %d/%d labels %d/%d values %d/%d",
			a.NumNodes(), b.NumNodes(), a.NumLabels(), b.NumLabels(), a.NumValues(), b.NumValues())
	}
	for i := 0; i < a.NumLabels(); i++ {
		if a.Label(uint32(i)) != b.Label(uint32(i)) {
			t.Fatalf("label %d: %q != %q", i, a.Label(uint32(i)), b.Label(uint32(i)))
		}
	}
	ka, kb := a.Keywords(), b.Keywords()
	if len(ka) != len(kb) {
		t.Fatalf("keyword count %d != %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("keyword %d: %q != %q", i, ka[i], kb[i])
		}
		pa, pb := a.Postings(ka[i]), b.Postings(kb[i])
		if len(pa) != len(pb) {
			t.Fatalf("keyword %q: %d vs %d postings", ka[i], len(pa), len(pb))
		}
		for j := range pa {
			if !dewey.Equal(pa[j], pb[j]) {
				t.Fatalf("keyword %q posting %d: %v != %v", ka[i], j, pa[j], pb[j])
			}
		}
	}
	for i := 0; i < a.NumNodes(); i++ {
		ra, oka := a.ElementAt(i)
		rb, okb := b.ElementAt(i)
		if oka != okb {
			t.Fatalf("element %d presence mismatch", i)
		}
		if !dewey.Equal(ra.Dewey, rb.Dewey) || ra.LabelID != rb.LabelID || ra.Level != rb.Level ||
			ra.CIDMin != rb.CIDMin || ra.CIDMax != rb.CIDMax {
			t.Fatalf("element %d: %+v != %+v", i, ra, rb)
		}
		if len(ra.LabelPath) != len(rb.LabelPath) {
			t.Fatalf("element %d label path length %d != %d", i, len(ra.LabelPath), len(rb.LabelPath))
		}
		for j := range ra.LabelPath {
			if ra.LabelPath[j] != rb.LabelPath[j] {
				t.Fatalf("element %d label path %d: %d != %d", i, j, ra.LabelPath[j], rb.LabelPath[j])
			}
		}
		ca, cb := a.ContentAt(i), b.ContentAt(i)
		if len(ca) != len(cb) {
			t.Fatalf("element %d content %v != %v", i, ca, cb)
		}
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("element %d content word %d: %q != %q", i, j, ca[j], cb[j])
			}
		}
		chA, chB := a.Children(ra.Dewey), b.Children(rb.Dewey)
		if len(chA) != len(chB) {
			t.Fatalf("element %d children %d != %d", i, len(chA), len(chB))
		}
		for j := range chA {
			if !dewey.Equal(chA[j].Dewey, chB[j].Dewey) || chA[j].LabelID != chB[j].LabelID {
				t.Fatalf("element %d child %d mismatch", i, j)
			}
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Nodes != sb.Nodes || sa.Words != sb.Words || sa.Postings != sb.Postings ||
		sa.MaxPostings != sb.MaxPostings || sa.MaxDepth != sb.MaxDepth {
		t.Fatalf("stats mismatch: %+v != %+v", sa, sb)
	}
}

// TestV3RoundTrip pins a shredded store byte-surface-identical through the
// v3 save/load cycle, and the re-save of the loaded (column-backed) store
// bit-identical to the first save — the writer round-trips lists it never
// decoded.
func TestV3RoundTrip(t *testing.T) {
	s := shredPaper(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	loaded, err := Load(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.cols == nil {
		t.Fatal("v3 load did not produce a column-backed store")
	}
	if got := loaded.Mode(); got != "v3-heap" {
		t.Fatalf("Mode() = %q, want v3-heap", got)
	}
	assertSameSurface(t, s, loaded)
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("column-backed re-save is not bit-identical to the original v3 image")
	}
}

// TestBackwardCompatV1V2 pins that v1 and v2 images still load through the
// restructured reader, present the same surface as the source store, and
// upgrade cleanly to v3.
func TestBackwardCompatV1V2(t *testing.T) {
	s := shredPaper(t)
	for _, ver := range []uint32{versionV1, versionV2} {
		var buf bytes.Buffer
		if err := s.save(&buf, ver); err != nil {
			t.Fatalf("save v%d: %v", ver, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load v%d: %v", ver, err)
		}
		if loaded.cols != nil || loaded.Mode() != "rows" {
			t.Fatalf("v%d load mode %q, want rows", ver, loaded.Mode())
		}
		assertSameSurface(t, s, loaded)
		// Upgrade: the row-loaded store re-saves as v3 and still matches.
		var up bytes.Buffer
		if err := loaded.Save(&up); err != nil {
			t.Fatalf("upgrade save from v%d: %v", ver, err)
		}
		upgraded, err := Load(bytes.NewReader(up.Bytes()))
		if err != nil {
			t.Fatalf("load upgraded v%d: %v", ver, err)
		}
		assertSameSurface(t, s, upgraded)
	}
}

// TestSaveDowngradeRejected pins that a column-backed store refuses the row
// formats (it has no row tables to write).
func TestSaveDowngradeRejected(t *testing.T) {
	s := shredPaper(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, ver := range []uint32{versionV1, versionV2} {
		if err := loaded.save(&bytes.Buffer{}, ver); err == nil {
			t.Fatalf("column-backed save to v%d did not error", ver)
		}
	}
}

// TestOpenFileModes exercises the three open modes against v3 and v2 files:
// mode strings, mapped-byte accounting, the v2-mmap rejection and Close.
func TestOpenFileModes(t *testing.T) {
	s := shredPaper(t)
	dir := t.TempDir()
	v3path := filepath.Join(dir, "v3.xks")
	if err := s.SaveFile(v3path); err != nil {
		t.Fatal(err)
	}
	v2path := filepath.Join(dir, "v2.xks")
	var v2buf bytes.Buffer
	if err := s.save(&v2buf, versionV2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2path, v2buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	heap, err := OpenFile(v3path, OpenOptions{Mode: OpenHeap})
	if err != nil {
		t.Fatal(err)
	}
	if heap.Mode() != "v3-heap" || heap.MappedBytes() != 0 || heap.FileBytes() == 0 {
		t.Fatalf("heap open: mode %q mapped %d file %d", heap.Mode(), heap.MappedBytes(), heap.FileBytes())
	}
	assertSameSurface(t, s, heap)
	if err := heap.Close(); err != nil {
		t.Fatal(err)
	}

	if mmapSupported {
		mapped, err := OpenFile(v3path, OpenOptions{Mode: OpenMmap})
		if err != nil {
			t.Fatal(err)
		}
		if mapped.Mode() != "v3-mmap" || mapped.MappedBytes() != mapped.FileBytes() || mapped.MappedBytes() == 0 {
			t.Fatalf("mmap open: mode %q mapped %d file %d", mapped.Mode(), mapped.MappedBytes(), mapped.FileBytes())
		}
		assertSameSurface(t, s, mapped)
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
		if err := mapped.Close(); err != nil {
			t.Fatal("second Close must be a no-op, got", err)
		}

		auto, err := OpenFile(v3path, OpenOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if auto.Mode() != "v3-mmap" {
			t.Fatalf("auto open mode %q, want v3-mmap", auto.Mode())
		}
		auto.Close()

		if _, err := OpenFile(v2path, OpenOptions{Mode: OpenMmap}); err == nil {
			t.Fatal("mmap open of a v2 file did not error")
		}
	}

	rows, err := OpenFile(v2path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rows.Mode() != "rows" || rows.FileBytes() == 0 {
		t.Fatalf("v2 open: mode %q file %d", rows.Mode(), rows.FileBytes())
	}
	assertSameSurface(t, s, rows)
}

// TestOpenV3Corruption pins the deterministic failure modes of the section
// reader: truncated sections, corrupt CRCs (header and section), misaligned
// directory offsets and out-of-bounds lengths must all error — never panic,
// never return a store.
func TestOpenV3Corruption(t *testing.T) {
	s := shredPaper(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	v3 := buf.Bytes()
	dirEnd := 16 + 32*int(binary.LittleEndian.Uint32(v3[12:16]))
	fixHeader := func(c []byte) []byte {
		binary.LittleEndian.PutUint32(c[dirEnd:], crc32.ChecksumIEEE(c[:dirEnd]))
		return c
	}
	mutate := func(off int, x byte) []byte {
		c := append([]byte(nil), v3...)
		c[off] ^= x
		return c
	}
	cases := map[string][]byte{
		"empty":               {},
		"magic only":          []byte(magic),
		"truncated header":    v3[:14],
		"truncated directory": v3[:dirEnd-16],
		"truncated section":   v3[:len(v3)-9],
		"half file":           v3[:len(v3)/2],
		"header crc":          mutate(17, 0x10),
		"section byte":        mutate(dirEnd+12, 0x04),
		"last section byte":   mutate(len(v3)-1, 0x80),
		"entry crc":           fixHeader(mutate(20, 0xAA)),
		"misaligned offset":   fixHeader(mutate(24, 0x01)),
		"oob length":          fixHeader(mutate(32, 0xFF)),
		"offset into header":  fixHeader(mutate(16+32*3+8, 0x7F)),
	}
	for name, data := range cases {
		if _, err := openV3FromBytes(data); err == nil {
			t.Errorf("%s: corrupted image opened without error", name)
		}
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupted stream loaded without error", name)
		}
	}
}
