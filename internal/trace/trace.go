// Package trace is the per-request execution tracing layer behind the
// explain surfaces (GET /search?explain=1, xksearch -explain) and the
// slow-query log: a tree of timed spans — one per pipeline stage, with
// per-document children under the corpus fan-out — carried on the
// context.Context through the whole query path.
//
// The layer is strictly opt-in and free when off. A request is traced only
// when a *Trace has been attached to its context (NewContext); everywhere
// else, SpanFromContext returns nil and every Span method is a nil-safe
// no-op, so the pipeline's hook points cost one context lookup per stage
// and zero allocations. The hot loops (the k-way merges in internal/lca and
// internal/rtf) never consult the context per event — they count locally
// and report once per call.
//
// Spans are concurrency-safe: the corpus candidate fan-out attaches one
// child span per document from concurrent workers. A span's duration is
// stamped by End (idempotent; an unfinished span exports the time elapsed
// so far), attributes are small key/value pairs (counters, dispositions),
// and the finished tree exports as JSON (the explain=1 wire shape) or as
// an indented text rendering (xksearch -explain, the slow-query log).
package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Trace is one request's span tree. Create with New, attach with
// NewContext, finish with Finish before exporting.
type Trace struct {
	root *Span
}

// Span is one timed region of a traced request: a name, a wall-clock
// duration, counter/string attributes, and child spans. All methods are
// nil-safe no-ops, so instrumentation sites never branch on whether
// tracing is enabled.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	done     bool
	attrs    []Attr
	children []*Span
}

// Attr is one span attribute: an int64 counter or a string value.
type Attr struct {
	Key string
	Int int64
	Str string
	// IsStr distinguishes a string attribute from a counter (a zero-value
	// counter and an empty string would otherwise be ambiguous).
	IsStr bool
}

// New starts a trace whose root span begins now.
func New(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. Nil-safe.
func (t *Trace) Finish() { t.Root().End() }

type spanKey struct{}

// NewContext returns ctx carrying the trace's root span as the current
// span; the pipeline's hook points pick it up with SpanFromContext. A nil
// trace returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return ContextWithSpan(ctx, t.Root())
}

// ContextWithSpan returns ctx with sp as the current span, so hook points
// downstream parent their spans under it. A nil span returns ctx unchanged
// — re-parenting never turns tracing on by itself.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil when the request is not
// traced (or ctx is nil). The nil result is usable: every Span method
// no-ops on a nil receiver.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Child starts a new span under s and returns it. Safe for concurrent use
// (the corpus fan-out attaches per-document children from worker
// goroutines); nil-safe (returns nil, so an untraced caller chains no-ops).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stamps the span's duration. Idempotent: the first call wins, so a
// deferred End after an early return cannot overwrite an explicit one.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.dur = time.Since(s.start)
		s.done = true
	}
	s.mu.Unlock()
}

// SetInt records a counter attribute (last write wins per key).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, Int: v})
}

// SetStr records a string attribute (last write wins per key).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.set(Attr{Key: key, Str: v, IsStr: true})
}

// SetBool records a boolean attribute as the strings "true"/"false".
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetStr(key, fmt.Sprintf("%t", v))
}

func (s *Span) set(a Attr) {
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i] = a
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, a)
	s.mu.Unlock()
}

// Duration returns the span's duration: the stamped one after End, the
// time elapsed so far before it. Zero on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// SpanJSON is the wire shape of an exported span — the explain=1 payload.
// Attrs maps counter attributes to int64 and string attributes to string.
type SpanJSON struct {
	Name       string         `json:"name"`
	DurationMS float64        `json:"durationMs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// JSON exports the span tree rooted at s. Nil on a nil span.
func (s *Span) JSON() *SpanJSON {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := &SpanJSON{
		Name:       s.name,
		DurationMS: float64(s.durationLocked().Microseconds()) / 1000.0,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.IsStr {
				out.Attrs[a.Key] = a.Str
			} else {
				out.Attrs[a.Key] = a.Int
			}
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// Text renders the span tree as an indented list, one span per line —
// the xksearch -explain output and the slow-query log payload:
//
//	search 12.41ms
//	  plan 0.08ms keywordNodes=812
//	  candidates 9.77ms
//	    doc:dblp-0.xml 1.20ms candidates=31
//	  select 0.11ms selected=10
//	  materialize 2.31ms fragments=10
//
// Empty on a nil span.
func (s *Span) Text() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.writeText(&b, 0)
	return b.String()
}

func (s *Span) writeText(b *strings.Builder, depth int) {
	s.mu.Lock()
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %.2fms", s.name, float64(s.durationLocked().Microseconds())/1000.0)
	for _, a := range s.attrs {
		if a.IsStr {
			fmt.Fprintf(b, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(b, " %s=%d", a.Key, a.Int)
		}
	}
	b.WriteByte('\n')
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		c.writeText(b, depth+1)
	}
}
