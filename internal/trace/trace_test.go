package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every Span method through the untraced path: a
// context without a trace yields a nil span, and the whole instrumentation
// chain must no-op instead of panicking.
func TestNilSafety(t *testing.T) {
	sp := SpanFromContext(context.Background())
	if sp != nil {
		t.Fatalf("SpanFromContext on a plain context = %v, want nil", sp)
	}
	if sp2 := SpanFromContext(nil); sp2 != nil { //nolint:staticcheck // nil ctx is the documented no-trace case
		t.Fatalf("SpanFromContext(nil) = %v, want nil", sp2)
	}
	child := sp.Child("stage")
	if child != nil {
		t.Fatalf("nil.Child = %v, want nil", child)
	}
	child.SetInt("count", 1)
	child.SetStr("disposition", "miss")
	child.SetBool("truncated", true)
	child.End()
	if d := child.Duration(); d != 0 {
		t.Fatalf("nil.Duration = %v, want 0", d)
	}
	if j := child.JSON(); j != nil {
		t.Fatalf("nil.JSON = %v, want nil", j)
	}
	if s := child.Text(); s != "" {
		t.Fatalf("nil.Text = %q, want empty", s)
	}
	var tr *Trace
	if tr.Root() != nil {
		t.Fatal("nil trace Root should be nil")
	}
	tr.Finish()
	ctx := context.Background()
	if got := NewContext(ctx, tr); got != ctx {
		t.Fatal("NewContext with nil trace must return ctx unchanged")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("ContextWithSpan with nil span must return ctx unchanged")
	}
}

// TestUntracedOpsAllocateNothing pins the off-path cost of the hook points:
// looking up the (absent) span and running the full no-op chain must not
// allocate — this is the contract that lets the pipeline stay instrumented
// on every request.
func TestUntracedOpsAllocateNothing(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := SpanFromContext(ctx)
		c := sp.Child("stage")
		c.SetInt("count", 42)
		c.End()
		_ = ContextWithSpan(ctx, c)
	})
	if allocs != 0 {
		t.Fatalf("untraced hook chain allocates %.1f objects/op, want 0", allocs)
	}
}

func TestTreeStructureAndExport(t *testing.T) {
	tr := New("search")
	root := tr.Root()
	plan := root.Child("plan")
	plan.SetInt("keywordNodes", 12)
	plan.End()
	cand := root.Child("candidates")
	doc := cand.Child("doc:a.xml")
	doc.SetInt("candidates", 3)
	doc.End()
	cand.End()
	root.SetStr("cache", "miss")
	tr.Finish()

	j := root.JSON()
	if j.Name != "search" || len(j.Children) != 2 {
		t.Fatalf("unexpected export: %+v", j)
	}
	if j.Attrs["cache"] != "miss" {
		t.Fatalf("string attr lost: %v", j.Attrs)
	}
	if j.Children[0].Attrs["keywordNodes"] != int64(12) {
		t.Fatalf("counter attr lost: %v", j.Children[0].Attrs)
	}
	if len(j.Children[1].Children) != 1 || j.Children[1].Children[0].Name != "doc:a.xml" {
		t.Fatalf("nesting lost: %+v", j.Children[1])
	}
	if _, err := json.Marshal(j); err != nil {
		t.Fatalf("span JSON does not marshal: %v", err)
	}

	text := root.Text()
	for _, want := range []string{"search ", "  plan ", "  candidates ", "    doc:a.xml ", "keywordNodes=12", "cache=miss"} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
}

// TestEndIdempotent: the first End wins, so a deferred End cannot
// overwrite the duration an explicit one stamped.
func TestEndIdempotent(t *testing.T) {
	tr := New("x")
	sp := tr.Root()
	sp.End()
	d1 := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if d2 := sp.Duration(); d2 != d1 {
		t.Fatalf("second End changed duration: %v -> %v", d1, d2)
	}
}

// TestAttrOverwrite: last write per key wins, no duplicate keys.
func TestAttrOverwrite(t *testing.T) {
	tr := New("x")
	sp := tr.Root()
	sp.SetInt("n", 1)
	sp.SetInt("n", 2)
	j := sp.JSON()
	if len(j.Attrs) != 1 || j.Attrs["n"] != int64(2) {
		t.Fatalf("attr overwrite broken: %v", j.Attrs)
	}
}

// TestConcurrentChildren mirrors the corpus fan-out: many workers attach
// children and attributes to one parent concurrently (run under -race).
func TestConcurrentChildren(t *testing.T) {
	tr := New("search")
	cand := tr.Root().Child("candidates")
	var wg sync.WaitGroup
	const workers = 16
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := cand.Child("doc")
			sp.SetInt("candidates", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	cand.End()
	tr.Finish()
	if got := len(cand.JSON().Children); got != workers {
		t.Fatalf("lost children under concurrency: got %d, want %d", got, workers)
	}
}
