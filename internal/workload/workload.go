// Package workload encodes the evaluation workload of §5.1 of the paper:
// the DBLP and XMark keyword tables with their published frequencies, the
// per-keyword abbreviation letters, and the keyword queries of Figures 5
// and 6.
//
// The figures label queries by concatenated abbreviation letters (e.g.
// "vdo" = "preventions description order"). The paper's axis labels are
// partially garbled in the available text, so the letter → keyword mapping
// was reconstructed under the constraint that every letter used by a query
// maps to a unique keyword; the handful of ambiguous axis groups were
// resolved to plausible splits. Exact query composition does not affect the
// claims being reproduced (runtime parity and the CFR/APR shape hold across
// the whole mix).
package workload

import (
	"fmt"
	"strings"

	"xks/internal/datagen"
)

// Keyword is one query keyword with its abbreviation letter and the
// occurrence counts the paper reports for it (one count per dataset
// variant: DBLP has one, XMark has three — standard, data1, data2).
type Keyword struct {
	Word   string
	Letter byte
	Freqs  []int
}

// Workload bundles a dataset's keywords and query set.
type Workload struct {
	Name     string
	Keywords []Keyword
	// Queries are abbreviation-letter strings in figure order.
	Queries []string

	byLetter map[byte]string
}

func newWorkload(name string, kws []Keyword, queries []string) Workload {
	w := Workload{Name: name, Keywords: kws, Queries: queries, byLetter: map[byte]string{}}
	for _, k := range kws {
		w.byLetter[k.Letter] = k.Word
	}
	return w
}

// DBLP returns the DBLP workload: the paper's 20 keywords with their
// dblp20040213 frequencies and the 20 queries of Figures 5(a)/6(a).
func DBLP() Workload {
	kws := []Keyword{
		{"keyword", 'k', []int{90}},
		{"similarity", 's', []int{1242}},
		{"recognition", 'r', []int{6447}},
		{"algorithm", 'a', []int{14181}},
		{"data", 'd', []int{25840}},
		{"probabilistic", 'p', []int{2284}},
		{"xml", 'x', []int{2121}},
		{"dynamic", 'y', []int{7281}},
		{"sigmod", 'g', []int{3983}},
		{"tree", 't', []int{3549}},
		{"query", 'q', []int{3560}},
		{"automata", 'o', []int{3337}},
		{"pattern", 'n', []int{6513}},
		{"retrieval", 'l', []int{5111}},
		{"efficient", 'f', []int{8279}},
		{"understanding", 'u', []int{1450}},
		{"searching", 'c', []int{4618}},
		{"vldb", 'v', []int{2313}},
		{"henry", 'h', []int{1322}},
		{"semantics", 'm', []int{3694}},
	}
	queries := []string{
		"ks", "kr", "ka", "dr", "px", "ay", "gt",
		"tqo", "psx", "tna", "xkl", "ypf",
		"ypfl", "xkla", "usc",
		"xftdr", "xdkla", "xayn",
		"vfxdkl", "uschkpgm",
	}
	return newWorkload("dblp", kws, queries)
}

// XMarkVariant selects which of the three XMark datasets' frequency column
// applies.
type XMarkVariant int

const (
	XMarkStandard XMarkVariant = iota // 111.1 MB in the paper
	XMarkData1                        // 334.9 MB
	XMarkData2                        // 669.6 MB
)

func (v XMarkVariant) String() string {
	switch v {
	case XMarkData1:
		return "xmark-data1"
	case XMarkData2:
		return "xmark-data2"
	default:
		return "xmark-standard"
	}
}

// XMark returns the XMark workload: the paper's 13 keywords with their
// three per-dataset frequencies and the 24 queries of Figures 5(b–d)/6(b–d).
func XMark() Workload {
	kws := []Keyword{
		{"particle", 'a', []int{12, 33, 69}},
		{"dominator", 'n', []int{56, 150, 285}},
		{"threshold", 't', []int{123, 405, 804}},
		{"chronicle", 'c', []int{426, 1286, 2568}},
		{"method", 'm', []int{552, 1667, 3356}},
		{"strings", 's', []int{615, 1847, 3620}},
		{"unjust", 'u', []int{1000, 3044, 6150}},
		{"invention", 'i', []int{1546, 4715, 9404}},
		{"egypt", 'e', []int{2064, 5255, 12466}},
		{"leon", 'l', []int{2519, 7647, 15210}},
		{"preventions", 'v', []int{66216, 199365, 397672}},
		{"description", 'd', []int{11681, 35168, 70230}},
		{"order", 'o', []int{12705, 38141, 76271}},
	}
	queries := []string{
		"at", "ad", "av", "cm", "do", "vd",
		"tcm", "cms", "iel", "sdc", "vdo",
		"atcm", "cmsu", "suie", "iadm", "vdoi",
		"tcmsuiel",
		"atcms", "atcmd", "atcmv", "atcdv",
		"atcdve", "atcmve", "dtcmvo",
	}
	return newWorkload("xmark", kws, queries)
}

// Expand translates an abbreviation-letter query like "vdo" into the
// keyword string "preventions description order".
func (w Workload) Expand(letters string) (string, error) {
	parts := make([]string, 0, len(letters))
	for i := 0; i < len(letters); i++ {
		word, ok := w.byLetter[letters[i]]
		if !ok {
			return "", fmt.Errorf("workload %s: no keyword for letter %q in query %q", w.Name, letters[i], letters)
		}
		parts = append(parts, word)
	}
	return strings.Join(parts, " "), nil
}

// ExpandAll translates every query of the workload, in figure order.
func (w Workload) ExpandAll() ([]string, error) {
	out := make([]string, len(w.Queries))
	for i, q := range w.Queries {
		ex, err := w.Expand(q)
		if err != nil {
			return nil, err
		}
		out[i] = ex
	}
	return out, nil
}

// Specs scales the keyword frequencies of the given variant column by
// factor (paper-size → generated-size), clamping every count to at least 1
// so each keyword stays searchable.
func (w Workload) Specs(variant int, factor float64) ([]datagen.KeywordSpec, error) {
	out := make([]datagen.KeywordSpec, len(w.Keywords))
	for i, k := range w.Keywords {
		if variant < 0 || variant >= len(k.Freqs) {
			return nil, fmt.Errorf("workload %s: keyword %q has no frequency column %d", w.Name, k.Word, variant)
		}
		count := int(float64(k.Freqs[variant])*factor + 0.5)
		if count < 1 {
			count = 1
		}
		out[i] = datagen.KeywordSpec{Word: k.Word, Count: count}
	}
	return out, nil
}
