package workload

import (
	"strings"
	"testing"
)

func TestDBLPWorkloadShape(t *testing.T) {
	w := DBLP()
	if len(w.Keywords) != 20 {
		t.Errorf("DBLP keywords = %d, want 20", len(w.Keywords))
	}
	if len(w.Queries) != 20 {
		t.Errorf("DBLP queries = %d, want 20", len(w.Queries))
	}
	// Every abbreviation letter unique.
	seen := map[byte]string{}
	for _, k := range w.Keywords {
		if prev, dup := seen[k.Letter]; dup {
			t.Errorf("letter %q used by %q and %q", k.Letter, prev, k.Word)
		}
		seen[k.Letter] = k.Word
		if len(k.Freqs) != 1 {
			t.Errorf("keyword %q has %d frequency columns, want 1", k.Word, len(k.Freqs))
		}
		if !strings.ContainsRune(k.Word, rune(k.Letter)) {
			t.Errorf("letter %q not in keyword %q", k.Letter, k.Word)
		}
	}
}

func TestXMarkWorkloadShape(t *testing.T) {
	w := XMark()
	if len(w.Keywords) != 13 {
		t.Errorf("XMark keywords = %d, want 13", len(w.Keywords))
	}
	if len(w.Queries) != 24 {
		t.Errorf("XMark queries = %d, want 24", len(w.Queries))
	}
	for _, k := range w.Keywords {
		if len(k.Freqs) != 3 {
			t.Errorf("keyword %q has %d frequency columns, want 3", k.Word, len(k.Freqs))
		}
		// Frequencies grow with the dataset size.
		if !(k.Freqs[0] <= k.Freqs[1] && k.Freqs[1] <= k.Freqs[2]) {
			t.Errorf("keyword %q frequencies not monotone: %v", k.Word, k.Freqs)
		}
	}
}

func TestExpandVDO(t *testing.T) {
	w := XMark()
	got, err := w.Expand("vdo")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's own example: "the 'vdo' for XMark series means the
	// keyword query is 'preventions description order'".
	if got != "preventions description order" {
		t.Errorf("Expand(vdo) = %q", got)
	}
}

func TestExpandAllQueriesResolve(t *testing.T) {
	for _, w := range []Workload{DBLP(), XMark()} {
		qs, err := w.ExpandAll()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		for i, q := range qs {
			words := strings.Fields(q)
			if len(words) != len(w.Queries[i]) {
				t.Errorf("%s query %q expanded to %d words", w.Name, w.Queries[i], len(words))
			}
			// No duplicate keyword within one query.
			seen := map[string]bool{}
			for _, word := range words {
				if seen[word] {
					t.Errorf("%s query %q repeats keyword %q", w.Name, w.Queries[i], word)
				}
				seen[word] = true
			}
		}
	}
}

func TestExpandUnknownLetter(t *testing.T) {
	w := DBLP()
	if _, err := w.Expand("kz"); err == nil {
		t.Error("unknown letter should fail")
	}
}

func TestSpecsScaling(t *testing.T) {
	w := XMark()
	specs, err := w.Specs(int(XMarkStandard), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	byWord := map[string]int{}
	for _, s := range specs {
		byWord[s.Word] = s.Count
	}
	// particle 12 × 0.01 → clamped to 1; order 12705 × 0.01 ≈ 127.
	if byWord["particle"] != 1 {
		t.Errorf("particle = %d, want 1 (clamped)", byWord["particle"])
	}
	if byWord["order"] != 127 {
		t.Errorf("order = %d, want 127", byWord["order"])
	}
	// Rare keywords stay rarer than common ones after scaling.
	if byWord["particle"] > byWord["preventions"] {
		t.Error("scaling broke frequency order")
	}
}

func TestSpecsBadVariant(t *testing.T) {
	w := DBLP()
	if _, err := w.Specs(2, 1); err == nil {
		t.Error("out-of-range variant should fail")
	}
	if _, err := w.Specs(-1, 1); err == nil {
		t.Error("negative variant should fail")
	}
}

func TestVariantString(t *testing.T) {
	if XMarkStandard.String() != "xmark-standard" ||
		XMarkData1.String() != "xmark-data1" ||
		XMarkData2.String() != "xmark-data2" {
		t.Error("variant strings broken")
	}
}
