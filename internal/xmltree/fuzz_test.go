package xmltree

import (
	"bytes"
	"testing"
)

// FuzzParse checks that the parser never panics and that every successfully
// parsed document survives a serialize → reparse round trip with the same
// node count.
func FuzzParse(f *testing.F) {
	f.Add(sampleXML)
	f.Add(`<a/>`)
	f.Add(`<a><b>text</b><c x="1"/></a>`)
	f.Add(`<a>` + "\x00" + `</a>`)
	f.Add(`<a><b></a></b>`)
	f.Add(`<?xml version="1.0"?><!-- c --><r>t</r>`)
	f.Add(`<r xmlns:x="u"><x:e x:a="v"/></r>`)
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := ParseString(doc)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteXML(&buf, tr.Root); err != nil {
			t.Fatalf("WriteXML failed on parsed tree: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v\ninput: %q\nserialized: %q", err, doc, buf.String())
		}
		if back.Size() != tr.Size() {
			t.Fatalf("round trip changed node count: %d -> %d (input %q)", tr.Size(), back.Size(), doc)
		}
	})
}
