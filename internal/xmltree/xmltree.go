// Package xmltree models an XML document as the labelled tree
// T = (r, V, E, Σ, λ) of the paper and assigns every node a Dewey code.
//
// Nodes carry a label (the element name), optional attributes and optional
// text. Following the paper's model (Figure 1(a)), text values live on the
// element node itself rather than in separate text nodes: the content set Cv
// of a node is derived from its label, attribute names/values and text.
//
// The package provides a streaming parser built on encoding/xml, a
// programmatic builder used by tests and generators, pre-order navigation,
// and serialization of whole trees or of fragments (arbitrary
// ancestor-closed subsets of nodes).
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode"

	"xks/internal/dewey"
)

// Attr is a single XML attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is an element node of the tree.
type Node struct {
	Code     dewey.Code
	Label    string
	Attrs    []Attr
	Text     string // concatenated trimmed character data directly under the element
	Parent   *Node
	Children []*Node
}

// IsLeaf reports whether the node has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Level is the node depth; the root is level 0.
func (n *Node) Level() int { return n.Code.Level() }

// ContentPieces returns the raw strings whose words form the node's content
// set Cv: label, attribute names and values, and text.
func (n *Node) ContentPieces() []string {
	pieces := make([]string, 0, 2+2*len(n.Attrs))
	pieces = append(pieces, n.Label)
	for _, a := range n.Attrs {
		pieces = append(pieces, a.Name, a.Value)
	}
	if n.Text != "" {
		pieces = append(pieces, n.Text)
	}
	return pieces
}

// String renders the node as in the paper, e.g. "0.2.0.1 (title)".
func (n *Node) String() string {
	return fmt.Sprintf("%s (%s)", n.Code, n.Label)
}

// Tree is a parsed XML document with Dewey-coded nodes.
type Tree struct {
	Root  *Node
	byKey map[string]*Node
	size  int
}

// Size returns the number of element nodes in the tree.
func (t *Tree) Size() int { return t.size }

// NodeAt returns the node with the given Dewey code, or nil.
func (t *Tree) NodeAt(c dewey.Code) *Node {
	return t.byKey[c.Key()]
}

// MustNodeAt returns the node at the code given in dotted text form and
// panics if absent. Intended for tests.
func (t *Tree) MustNodeAt(s string) *Node {
	n := t.NodeAt(dewey.MustParse(s))
	if n == nil {
		panic(fmt.Sprintf("xmltree: no node at %s", s))
	}
	return n
}

// Walk visits every node in pre-order. Returning false from fn prunes the
// node's subtree from the traversal.
func (t *Tree) Walk(fn func(*Node) bool) {
	if t.Root == nil {
		return
	}
	var rec func(*Node)
	rec = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Nodes returns all nodes in pre-order.
func (t *Tree) Nodes() []*Node {
	out := make([]*Node, 0, t.size)
	t.Walk(func(n *Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

// MaxDepth returns the deepest node level in the tree.
func (t *Tree) MaxDepth() int {
	max := 0
	t.Walk(func(n *Node) bool {
		if l := n.Level(); l > max {
			max = l
		}
		return true
	})
	return max
}

// rebuildIndex recomputes Dewey codes, parents and the code index for the
// whole tree. Called after structural edits (see AddChild / RemoveNode).
func (t *Tree) rebuildIndex() {
	t.byKey = make(map[string]*Node)
	t.size = 0
	if t.Root == nil {
		return
	}
	var rec func(n *Node, code dewey.Code)
	rec = func(n *Node, code dewey.Code) {
		n.Code = code
		t.byKey[code.Key()] = n
		t.size++
		for i, c := range n.Children {
			c.Parent = n
			rec(c, code.Child(uint32(i)))
		}
	}
	t.Root.Parent = nil
	rec(t.Root, dewey.Code{0})
}

// AddChild appends a new subtree (given as a builder element) under the node
// with the given code and re-indexes the tree. It returns the new node. Used
// by the axiomatic-property tests (data monotonicity / consistency).
func (t *Tree) AddChild(parent dewey.Code, e E) (*Node, error) {
	p := t.NodeAt(parent)
	if p == nil {
		return nil, fmt.Errorf("xmltree: no node at %s", parent)
	}
	n := e.node()
	p.Children = append(p.Children, n)
	t.rebuildIndex()
	return n, nil
}

// AppendChild appends a new subtree under the given parent and indexes only
// the new nodes — an O(new subtree) operation. Appending at the end of the
// child list never renumbers existing nodes, which is what makes
// incremental maintenance sound (contrast RemoveNode, which renumbers and
// therefore rebuilds).
func (t *Tree) AppendChild(parent dewey.Code, e E) (*Node, error) {
	p := t.NodeAt(parent)
	if p == nil {
		return nil, fmt.Errorf("xmltree: no node at %s", parent)
	}
	n := e.node()
	n.Parent = p
	ordinal := uint32(len(p.Children))
	p.Children = append(p.Children, n)
	var rec func(node *Node, code dewey.Code)
	rec = func(node *Node, code dewey.Code) {
		node.Code = code
		t.byKey[code.Key()] = node
		t.size++
		for i, c := range node.Children {
			c.Parent = node
			rec(c, code.Child(uint32(i)))
		}
	}
	rec(n, parent.Child(ordinal))
	return n, nil
}

// RemoveNode deletes the subtree rooted at the given code and re-indexes.
func (t *Tree) RemoveNode(c dewey.Code) error {
	n := t.NodeAt(c)
	if n == nil {
		return fmt.Errorf("xmltree: no node at %s", c)
	}
	if n.Parent == nil {
		return fmt.Errorf("xmltree: cannot remove the root")
	}
	sibs := n.Parent.Children
	for i, s := range sibs {
		if s == n {
			n.Parent.Children = append(sibs[:i], sibs[i+1:]...)
			break
		}
	}
	t.rebuildIndex()
	return nil
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t.Root == nil {
		return &Tree{}
	}
	var rec func(*Node) *Node
	rec = func(n *Node) *Node {
		cp := &Node{Label: n.Label, Text: n.Text}
		if len(n.Attrs) > 0 {
			cp.Attrs = make([]Attr, len(n.Attrs))
			copy(cp.Attrs, n.Attrs)
		}
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = rec(c)
		}
		return cp
	}
	nt := &Tree{Root: rec(t.Root)}
	nt.rebuildIndex()
	return nt
}

// Parse reads an XML document and builds the tree. Character data is
// trimmed and concatenated (space separated) onto the innermost open
// element. Processing instructions, comments and directives are ignored.
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var (
		root  *Node
		stack []*Node
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch el := tok.(type) {
		case xml.StartElement:
			// encoding/xml splits prefixed names on the colon without
			// validating the local part ("A:0" yields local name "0"), so
			// names that are not well-formed XML slip through; reject them
			// here, since they cannot be re-serialized.
			if !validXMLName(el.Name.Local) {
				return nil, fmt.Errorf("xmltree: invalid element name %q", el.Name.Local)
			}
			n := &Node{Label: el.Name.Local}
			for _, a := range el.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				if !validXMLName(a.Name.Local) {
					return nil, fmt.Errorf("xmltree: invalid attribute name %q", a.Name.Local)
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				n.Parent = top
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %s", el.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			txt := strings.TrimSpace(string(el))
			if txt == "" {
				continue
			}
			top := stack[len(stack)-1]
			if top.Text == "" {
				top.Text = txt
			} else {
				top.Text += " " + txt
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	t := &Tree{Root: root}
	t.rebuildIndex()
	return t, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Tree, error) {
	return Parse(strings.NewReader(s))
}

// E is a literal element description used to build trees programmatically.
type E struct {
	Label string
	Text  string
	Attrs []Attr
	Kids  []E
}

func (e E) node() *Node {
	n := &Node{Label: e.Label, Text: e.Text}
	if len(e.Attrs) > 0 {
		n.Attrs = make([]Attr, len(e.Attrs))
		copy(n.Attrs, e.Attrs)
	}
	n.Children = make([]*Node, len(e.Kids))
	for i, k := range e.Kids {
		n.Children[i] = k.node()
	}
	return n
}

// Build constructs a tree from a literal element description.
func Build(rootElem E) *Tree {
	t := &Tree{Root: rootElem.node()}
	t.rebuildIndex()
	return t
}

// WriteXML serializes the subtree rooted at n with two-space indentation.
func WriteXML(w io.Writer, n *Node) error {
	return writeNode(w, n, 0, nil)
}

// WriteFragmentXML serializes only the nodes of the subtree rooted at root
// whose Dewey codes are in keep. keep must be ancestor-closed with respect
// to root (every kept node's ancestors up to root are kept), which holds for
// all fragments produced in this repository.
func WriteFragmentXML(w io.Writer, root *Node, keep map[string]bool) error {
	return writeNode(w, root, 0, keep)
}

func writeNode(w io.Writer, n *Node, depth int, keep map[string]bool) error {
	if keep != nil && !keep[n.Code.Key()] {
		return nil
	}
	ind := strings.Repeat("  ", depth)
	var b strings.Builder
	b.WriteString(ind)
	b.WriteByte('<')
	b.WriteString(n.Label)
	for _, a := range n.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Name)
		b.WriteString(`="`)
		xmlEscape(&b, a.Value)
		b.WriteByte('"')
	}
	keptKids := 0
	for _, c := range n.Children {
		if keep == nil || keep[c.Code.Key()] {
			keptKids++
		}
	}
	if n.Text == "" && keptKids == 0 {
		b.WriteString("/>\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	b.WriteByte('>')
	if n.Text != "" {
		xmlEscape(&b, n.Text)
	}
	if keptKids == 0 {
		b.WriteString("</")
		b.WriteString(n.Label)
		b.WriteString(">\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeNode(w, c, depth+1, keep); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", ind, n.Label)
	return err
}

// validXMLName reports whether s can serve as a serializable XML name
// (letter or underscore start, then letters, digits, '-', '_', '.').
func validXMLName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := unicode.IsLetter(r) || r == '_'
		if i == 0 {
			if !letter {
				return false
			}
			continue
		}
		if !letter && !unicode.IsDigit(r) && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

func xmlEscape(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
}

// ASCIITree renders the subtree rooted at root as an indented tree in the
// style of the paper's figures ("0.2.0.1 (title) "Keyword Search""),
// restricted to the kept codes if keep is non-nil.
func ASCIITree(root *Node, keep map[string]bool) string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if keep != nil && !keep[n.Code.Key()] {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		if n.Text != "" {
			fmt.Fprintf(&b, " %q", n.Text)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(root, 0)
	return b.String()
}

// LabelHistogram counts nodes per label, useful for dataset statistics.
func (t *Tree) LabelHistogram() map[string]int {
	h := make(map[string]int)
	t.Walk(func(n *Node) bool {
		h[n.Label]++
		return true
	})
	return h
}

// SortedLabels returns the distinct labels in lexical order.
func (t *Tree) SortedLabels() []string {
	h := t.LabelHistogram()
	out := make([]string, 0, len(h))
	for l := range h {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
