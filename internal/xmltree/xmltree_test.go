package xmltree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"xks/internal/dewey"
)

const sampleXML = `<?xml version="1.0"?>
<Publications>
  <title>VLDB</title>
  <year>2008</year>
  <Articles>
    <article id="a1">
      <title>Match Relevant XML Keyword Search</title>
      <abstract>keyword search over XML data</abstract>
    </article>
  </Articles>
</Publications>`

func TestParseBasic(t *testing.T) {
	tr, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Label != "Publications" {
		t.Errorf("root label = %q", tr.Root.Label)
	}
	if got := tr.Size(); got != 7 {
		t.Errorf("Size = %d, want 7", got)
	}
	title := tr.MustNodeAt("0.0")
	if title.Label != "title" || title.Text != "VLDB" {
		t.Errorf("node 0.0 = %s %q", title, title.Text)
	}
	art := tr.MustNodeAt("0.2.0")
	if art.Label != "article" || len(art.Attrs) != 1 || art.Attrs[0] != (Attr{"id", "a1"}) {
		t.Errorf("article attrs = %v", art.Attrs)
	}
	if art.Parent != tr.MustNodeAt("0.2") {
		t.Error("parent pointer wrong")
	}
	if tr.NodeAt(dewey.MustParse("0.9")) != nil {
		t.Error("NodeAt for absent code should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a></b>", "<a/><b/>", "just text"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestParseConcatenatesText(t *testing.T) {
	tr, err := ParseString(`<a>hello <b>inner</b> world</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root.Text != "hello world" {
		t.Errorf("root text = %q", tr.Root.Text)
	}
	if tr.MustNodeAt("0.0").Text != "inner" {
		t.Errorf("inner text = %q", tr.MustNodeAt("0.0").Text)
	}
}

func TestBuildMatchesParse(t *testing.T) {
	built := Build(E{Label: "Publications", Kids: []E{
		{Label: "title", Text: "VLDB"},
		{Label: "year", Text: "2008"},
		{Label: "Articles", Kids: []E{
			{Label: "article", Attrs: []Attr{{"id", "a1"}}, Kids: []E{
				{Label: "title", Text: "Match Relevant XML Keyword Search"},
				{Label: "abstract", Text: "keyword search over XML data"},
			}},
		}},
	}})
	parsed, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	bn, pn := built.Nodes(), parsed.Nodes()
	if len(bn) != len(pn) {
		t.Fatalf("node counts differ: %d vs %d", len(bn), len(pn))
	}
	for i := range bn {
		if !dewey.Equal(bn[i].Code, pn[i].Code) || bn[i].Label != pn[i].Label || bn[i].Text != pn[i].Text {
			t.Errorf("node %d differs: %s %q vs %s %q", i, bn[i], bn[i].Text, pn[i], pn[i].Text)
		}
	}
}

func TestWalkPreOrderAndPrune(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	var order []string
	tr.Walk(func(n *Node) bool {
		order = append(order, n.Code.String())
		return n.Label != "Articles" // prune below Articles
	})
	want := []string{"0", "0.0", "0.1", "0.2"}
	if strings.Join(order, " ") != strings.Join(want, " ") {
		t.Errorf("Walk order = %v, want %v", order, want)
	}
}

func TestNodesSortedPreOrder(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	ns := tr.Nodes()
	for i := 1; i < len(ns); i++ {
		if dewey.Compare(ns[i-1].Code, ns[i].Code) >= 0 {
			t.Fatalf("Nodes not in pre-order at %d: %s >= %s", i, ns[i-1].Code, ns[i].Code)
		}
	}
}

func TestContentPieces(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	art := tr.MustNodeAt("0.2.0")
	got := strings.Join(art.ContentPieces(), "|")
	want := "article|id|a1"
	if got != want {
		t.Errorf("ContentPieces = %q, want %q", got, want)
	}
	title := tr.MustNodeAt("0.0")
	got = strings.Join(title.ContentPieces(), "|")
	if got != "title|VLDB" {
		t.Errorf("ContentPieces = %q", got)
	}
}

func TestAddChildAndRemoveNode(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	before := tr.Size()
	n, err := tr.AddChild(dewey.MustParse("0.2"), E{Label: "article", Kids: []E{{Label: "title", Text: "New"}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != before+2 {
		t.Errorf("Size after AddChild = %d, want %d", tr.Size(), before+2)
	}
	if n.Code.String() != "0.2.1" {
		t.Errorf("new node code = %s, want 0.2.1", n.Code)
	}
	if tr.MustNodeAt("0.2.1.0").Text != "New" {
		t.Error("grandchild not indexed")
	}
	if _, err := tr.AddChild(dewey.MustParse("9.9"), E{Label: "x"}); err == nil {
		t.Error("AddChild at absent code should fail")
	}

	if err := tr.RemoveNode(dewey.MustParse("0.2.0")); err != nil {
		t.Fatal(err)
	}
	// The former 0.2.1 shifts to 0.2.0 after re-indexing.
	if tr.MustNodeAt("0.2.0.0").Text != "New" {
		t.Error("sibling not renumbered after removal")
	}
	if err := tr.RemoveNode(dewey.MustParse("0")); err == nil {
		t.Error("removing the root should fail")
	}
	if err := tr.RemoveNode(dewey.MustParse("5.5")); err == nil {
		t.Error("removing an absent node should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	cp := tr.Clone()
	cp.MustNodeAt("0.0").Text = "MUTATED"
	if tr.MustNodeAt("0.0").Text != "VLDB" {
		t.Error("Clone shares nodes with original")
	}
	if cp.Size() != tr.Size() {
		t.Errorf("clone size %d != %d", cp.Size(), tr.Size())
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	var buf bytes.Buffer
	if err := WriteXML(&buf, tr.Root); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	a, b := tr.Nodes(), back.Nodes()
	if len(a) != len(b) {
		t.Fatalf("round trip node count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Text != b[i].Text {
			t.Errorf("round trip node %d: %s %q vs %s %q", i, a[i], a[i].Text, b[i], b[i].Text)
		}
	}
}

func TestWriteXMLEscapes(t *testing.T) {
	tr := Build(E{Label: "a", Text: `x < y & "z"`, Attrs: []Attr{{"k", `<&>`}}})
	var buf bytes.Buffer
	if err := WriteXML(&buf, tr.Root); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `x < y`) || strings.Contains(out, `"<&>"`) {
		t.Errorf("unescaped output: %s", out)
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root.Text != `x < y & "z"` {
		t.Errorf("escaped round trip text = %q", back.Root.Text)
	}
}

func TestWriteFragmentXML(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	keep := map[string]bool{
		dewey.MustParse("0").Key():     true,
		dewey.MustParse("0.2").Key():   true,
		dewey.MustParse("0.2.0").Key(): true,
	}
	var buf bytes.Buffer
	if err := WriteFragmentXML(&buf, tr.Root, keep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "VLDB") || strings.Contains(out, "abstract") {
		t.Errorf("fragment leaked pruned nodes:\n%s", out)
	}
	if !strings.Contains(out, "<article") {
		t.Errorf("fragment missing kept node:\n%s", out)
	}
}

func TestASCIITree(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	full := ASCIITree(tr.Root, nil)
	if !strings.Contains(full, `0.0 (title) "VLDB"`) {
		t.Errorf("ASCIITree missing node:\n%s", full)
	}
	keep := map[string]bool{dewey.MustParse("0").Key(): true, dewey.MustParse("0.1").Key(): true}
	partial := ASCIITree(tr.Root, keep)
	if strings.Contains(partial, "Articles") {
		t.Errorf("ASCIITree leaked pruned node:\n%s", partial)
	}
}

func TestLabelHistogramAndSortedLabels(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	h := tr.LabelHistogram()
	if h["title"] != 2 || h["Publications"] != 1 {
		t.Errorf("histogram = %v", h)
	}
	labels := tr.SortedLabels()
	for i := 1; i < len(labels); i++ {
		if labels[i-1] >= labels[i] {
			t.Errorf("labels not sorted: %v", labels)
		}
	}
}

func TestMaxDepth(t *testing.T) {
	tr, _ := ParseString(sampleXML)
	if got := tr.MaxDepth(); got != 3 {
		t.Errorf("MaxDepth = %d, want 3", got)
	}
}

// RandomTree builds a random tree; used here and exported via testing only.
func randomTree(rng *rand.Rand, maxKids, maxDepth int) *Tree {
	labels := []string{"a", "b", "c", "d"}
	var gen func(depth int) E
	gen = func(depth int) E {
		e := E{Label: labels[rng.Intn(len(labels))]}
		if rng.Intn(2) == 0 {
			e.Text = labels[rng.Intn(len(labels))] + " text"
		}
		if depth < maxDepth {
			for i := 0; i < rng.Intn(maxKids+1); i++ {
				e.Kids = append(e.Kids, gen(depth+1))
			}
		}
		return e
	}
	return Build(gen(0))
}

// Property: for every node, Code of child i extends parent code with i, and
// the byKey index is complete and consistent.
func TestDeweyAssignmentInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		tr := randomTree(rng, 3, 4)
		count := 0
		tr.Walk(func(n *Node) bool {
			count++
			if got := tr.NodeAt(n.Code); got != n {
				t.Fatalf("index lookup mismatch at %s", n.Code)
			}
			for i, c := range n.Children {
				want := n.Code.Child(uint32(i))
				if !dewey.Equal(c.Code, want) {
					t.Fatalf("child code %s, want %s", c.Code, want)
				}
				if c.Parent != n {
					t.Fatalf("broken parent pointer at %s", c.Code)
				}
			}
			return true
		})
		if count != tr.Size() {
			t.Fatalf("Size %d != walked %d", tr.Size(), count)
		}
	}
}

// Property: serialize → parse preserves structure for random trees.
func TestRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tr := randomTree(rng, 3, 4)
		var buf bytes.Buffer
		if err := WriteXML(&buf, tr.Root); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Size() != tr.Size() {
			t.Fatalf("trial %d: size %d != %d", trial, back.Size(), tr.Size())
		}
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1000; i++ {
		sb.WriteString("<item><name>node</name><desc>some words here</desc></item>")
	}
	sb.WriteString("</root>")
	doc := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAppendChildIncrementalMatchesAddChild(t *testing.T) {
	a, _ := ParseString(sampleXML)
	b, _ := ParseString(sampleXML)
	sub := E{Label: "article", Kids: []E{{Label: "title", Text: "New"}}}
	na, err := a.AppendChild(dewey.MustParse("0.2"), sub)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.AddChild(dewey.MustParse("0.2"), sub)
	if err != nil {
		t.Fatal(err)
	}
	if !dewey.Equal(na.Code, nb.Code) {
		t.Fatalf("codes differ: %s vs %s", na.Code, nb.Code)
	}
	an, bn := a.Nodes(), b.Nodes()
	if len(an) != len(bn) || a.Size() != b.Size() {
		t.Fatalf("sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for i := range an {
		if !dewey.Equal(an[i].Code, bn[i].Code) || an[i].Label != bn[i].Label {
			t.Fatalf("node %d differs: %s vs %s", i, an[i], bn[i])
		}
	}
	// Index consistency after the incremental path.
	if a.NodeAt(dewey.MustParse("0.2.1.0")).Text != "New" {
		t.Error("appended grandchild not indexed")
	}
	if _, err := a.AppendChild(dewey.MustParse("7.7"), sub); err == nil {
		t.Error("append under missing parent should fail")
	}
}
