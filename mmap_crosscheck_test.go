package xks

import (
	"context"
	"path/filepath"
	"testing"

	"xks/internal/analysis"
	"xks/internal/datagen"
	"xks/internal/paperdata"
	"xks/internal/store"
)

// assertSameResults pins two engines' search results byte-identical for one
// request: fragment headers, node lists and rendered XML.
func assertSameResults(t *testing.T, label string, want, got *Engine, req Request) {
	t.Helper()
	a, err := want.Search(context.Background(), req)
	if err != nil {
		t.Fatalf("%s: reference search: %v", label, err)
	}
	b, err := got.Search(context.Background(), req)
	if err != nil {
		t.Fatalf("%s: search: %v", label, err)
	}
	if len(a.Fragments) != len(b.Fragments) {
		t.Fatalf("%s: %d vs %d fragments", label, len(a.Fragments), len(b.Fragments))
	}
	for i := range a.Fragments {
		fa, fb := a.Fragments[i], b.Fragments[i]
		if fa.Root != fb.Root || fa.RootLabel != fb.RootLabel || fa.IsSLCA != fb.IsSLCA || fa.Score != fb.Score {
			t.Fatalf("%s fragment %d: headers differ: %+v vs %+v", label, i, fa, fb)
		}
		if fa.Len() != fb.Len() {
			t.Fatalf("%s fragment %d: %d vs %d nodes", label, i, fa.Len(), fb.Len())
		}
		for j := range fa.Nodes {
			na, nb := fa.Nodes[j], fb.Nodes[j]
			if na.Dewey != nb.Dewey || na.Label != nb.Label || na.Text != nb.Text ||
				na.IsKeywordNode != nb.IsKeywordNode {
				t.Fatalf("%s fragment %d node %d: %+v vs %+v", label, i, j, na, nb)
			}
		}
		if fa.XML() != fb.XML() {
			t.Fatalf("%s fragment %d: XML differs:\n%s\n----\n%s", label, i, fa.XML(), fb.XML())
		}
	}
}

// TestMmapCrosscheck pins search results byte-identical across the three
// store backings — in-RAM rows (shredded, never persisted), v3-heap and
// v3-mmap — for every algorithm and both semantics, on a corpus large
// enough to exercise multi-block compressed postings.
func TestMmapCrosscheck(t *testing.T) {
	tree := datagen.DBLP(datagen.DBLPConfig{Seed: 11, NumRecords: 300, Keywords: []datagen.KeywordSpec{
		{Word: "xml", Count: 160}, {Word: "keyword", Count: 90}, {Word: "search", Count: 40},
	}})
	shredded := store.Shred(tree, analysis.New())
	path := filepath.Join(t.TempDir(), "dblp.xks")
	if err := shredded.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	rows := FromStore(shredded)
	heap, err := OpenStoreMode(path, StoreHeap)
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()
	engines := map[string]*Engine{"v3-heap": heap}
	if info := heap.StoreInfo(); info.Mode != "v3-heap" {
		t.Fatalf("heap engine mode %q", info.Mode)
	}
	mapped, err := OpenStoreMode(path, StoreMmap)
	if err == nil {
		defer mapped.Close()
		if info := mapped.StoreInfo(); info.Mode != "v3-mmap" || info.MappedBytes == 0 {
			t.Fatalf("mmap engine info %+v", info)
		}
		engines["v3-mmap"] = mapped
	} else if info := heap.StoreInfo(); info.Mode == "v3-heap" {
		t.Logf("mmap unavailable on this platform: %v", err)
	}
	queries := []string{"xml keyword", "xml keyword search", "xml"}
	for name, e := range engines {
		for _, q := range queries {
			for _, algo := range []Algorithm{ValidRTF, MaxMatch, RawRTF} {
				for _, sem := range []Semantics{AllLCA, SLCAOnly} {
					req := NewRequest(q, Options{Algorithm: algo, Semantics: sem})
					assertSameResults(t, name+"/"+q+"/"+algo.String()+"/"+sem.String(), rows, e, req)
				}
			}
		}
	}
}

// TestOpenStoreLazyDecode is the acceptance check for the disk-native open
// path: opening a v3 store (and building its engine, scorer and planner
// statistics) decodes no posting list; the first k-keyword search decodes
// exactly the k lists it touches.
func TestOpenStoreLazyDecode(t *testing.T) {
	s := store.Shred(paperdata.Publications(), analysis.New())
	path := filepath.Join(t.TempDir(), "paper.xks")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if info := e.StoreInfo(); info.Mode != "v3-mmap" && info.Mode != "v3-heap" {
		t.Fatalf("v3 open produced mode %q", info.Mode)
	}
	if n := e.Index().DecodedLists(); n != 0 {
		t.Fatalf("open decoded %d posting lists eagerly, want 0", n)
	}
	if _, err := e.Search(context.Background(), NewRequest("xml keyword", Options{})); err != nil {
		t.Fatal(err)
	}
	if n := e.Index().DecodedLists(); n != 2 {
		t.Fatalf("2-keyword search decoded %d lists, want 2", n)
	}
}
