package xks

// Crosscheck of the staged pipeline (internal/exec: plan → candidates →
// select → materialize) against the pre-refactor eager path, which
// materialized every fragment before ranking or limiting. eagerSearch and
// eagerCorpusSearch below are line-for-line ports of the pre-pipeline
// Engine.Search and Corpus.Search; the tests assert byte-identical output
// across all three algorithms × both semantics, with and without ranking
// and limits. bench_test.go reuses the eager path as the baseline for
// BenchmarkCorpusTopK.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"xks/internal/concurrent"
	"xks/internal/datagen"
	"xks/internal/dewey"
	"xks/internal/index"
	"xks/internal/lca"
	"xks/internal/paperdata"
	"xks/internal/prune"
	"xks/internal/rank"
	"xks/internal/rtf"
	"xks/internal/workload"
)

// eagerSearch is the pre-refactor Engine.Search: assemble every fragment,
// then rank, then truncate.
func eagerSearch(e *Engine, queryText string, opts Options) (*Result, error) {
	res := &Result{Query: queryText, NextOffset: -1}
	words, idfWords, sets, err := e.resolveSets(queryText)
	if err != nil {
		var nm *index.ErrNoMatch
		if errors.As(err, &nm) {
			res.Stats.Keywords = words
			return res, nil
		}
		return nil, err
	}
	res.Stats.Keywords = words
	for _, s := range sets {
		res.Stats.KeywordNodes += len(s)
	}

	var roots []dewey.Code
	if opts.Semantics == SLCAOnly {
		roots = lca.SLCA(sets)
	} else {
		roots = lca.ELCAStackMerge(sets)
	}
	rtfs := rtf.Build(roots, sets)
	res.Stats.NumLCAs = len(rtfs)

	pruneOpts := prune.Options{ExactContent: opts.ExactContent}
	allRoots := make([]dewey.Code, len(rtfs))
	for i, r := range rtfs {
		allRoots[i] = r.Root
	}
	for _, r := range rtfs {
		f := prune.BuildFragment(r, e.labelOf, e.contentOf, pruneOpts)
		kept := f.Prune(opts.Algorithm.mode(), pruneOpts)
		res.Fragments = append(res.Fragments, eagerAssemble(e, r, kept, allRoots, words, idfWords))
	}

	if opts.Rank {
		// The pre-refactor Fragment carried its keyword events; they are
		// rtfs[i].KeywordNodes, still in document order at this point.
		scores := make([]float64, len(res.Fragments))
		for i := range res.Fragments {
			scores[i] = e.currentScorer().Score(rtfs[i].Root, rtfs[i].KeywordNodes, idfWords)
			res.Fragments[i].Score = scores[i]
		}
		ordered := rank.Order(scores)
		ranked := make([]*Fragment, len(ordered))
		for i, r := range ordered {
			ranked[i] = res.Fragments[r.Index]
		}
		res.Fragments = ranked
	}
	if opts.Limit > 0 && len(res.Fragments) > opts.Limit {
		res.Fragments = res.Fragments[:opts.Limit]
	}
	return res, nil
}

// eagerAssemble is the pre-refactor Engine.assemble.
func eagerAssemble(e *Engine, r *rtf.RTF, kept *prune.Result, allRoots []dewey.Code, words, idfWords []string) *Fragment {
	f := &Fragment{
		Root:      r.Root.String(),
		RootLabel: e.src.labelOf(r.Root),
		IsSLCA:    r.IsSLCA(allRoots),
		rootCode:  r.Root,
		kept:      kept.Kept,
		keep:      kept.KeepSet(),
		src:       e.src,
		words:     idfWords,
		snip:      e.snip,
	}
	matched := map[string]uint64{}
	for _, ev := range r.KeywordNodes {
		matched[ev.Code.Key()] = ev.Mask
	}
	for _, c := range kept.Kept {
		fn := FragmentNode{
			Dewey: c.String(),
			Label: e.src.labelOf(c),
			Text:  e.src.nodeText(c),
			Level: c.Level(),
		}
		if mask, ok := matched[c.Key()]; ok {
			fn.IsKeywordNode = true
			for i, w := range words {
				if mask&(1<<uint(i)) != 0 {
					fn.Matched = append(fn.Matched, w)
				}
			}
		}
		f.Nodes = append(f.Nodes, fn)
	}
	return f
}

// eagerCorpusSearch is the pre-refactor Corpus.Search: full per-document
// eager searches fanned out across workers, merged in document order,
// stable-sorted by score when ranking, then truncated.
func eagerCorpusSearch(c *Corpus, query string, opts Options) (*CorpusResult, error) {
	mergedLimit := opts.Limit
	docOpts := opts
	docOpts.Limit = 0

	type docOut struct {
		name string
		res  *Result
	}
	outs, err := concurrent.Map(c.Names(), c.Workers, func(name string) (docOut, error) {
		res, err := eagerSearch(c.engines[name], query, docOpts)
		if err != nil {
			return docOut{}, fmt.Errorf("xks: document %s: %w", name, err)
		}
		return docOut{name: name, res: res}, nil
	})
	if err != nil {
		return nil, err
	}
	merged := &CorpusResult{Query: query, PerDocument: map[string]int{}}
	for i, o := range outs {
		name, res := o.name, o.res
		if i == 0 {
			merged.Stats.Keywords = res.Stats.Keywords
		}
		merged.Stats.KeywordNodes += res.Stats.KeywordNodes
		merged.Stats.NumLCAs += res.Stats.NumLCAs
		merged.PerDocument[name] = len(res.Fragments)
		for _, f := range res.Fragments {
			merged.Fragments = append(merged.Fragments, CorpusFragment{Document: name, Fragment: f})
		}
	}
	if opts.Rank {
		sort.SliceStable(merged.Fragments, func(i, j int) bool {
			return merged.Fragments[i].Score > merged.Fragments[j].Score
		})
	}
	if mergedLimit > 0 && len(merged.Fragments) > mergedLimit {
		merged.Fragments = merged.Fragments[:mergedLimit]
	}
	return merged, nil
}

func requireSameFragments(t *testing.T, label string, want, got []*Fragment) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d fragments eager vs %d pipeline", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Root != g.Root || w.RootLabel != g.RootLabel || w.IsSLCA != g.IsSLCA {
			t.Fatalf("%s fragment %d: header %s/%s/%v vs %s/%s/%v",
				label, i, w.Root, w.RootLabel, w.IsSLCA, g.Root, g.RootLabel, g.IsSLCA)
		}
		if w.Score != g.Score {
			t.Fatalf("%s fragment %d (%s): score %v vs %v", label, i, w.Root, w.Score, g.Score)
		}
		if !reflect.DeepEqual(w.Nodes, g.Nodes) {
			t.Fatalf("%s fragment %d (%s): nodes differ\neager: %+v\npipeline: %+v",
				label, i, w.Root, w.Nodes, g.Nodes)
		}
		if w.XML() != g.XML() {
			t.Fatalf("%s fragment %d (%s): XML differs\neager:\n%s\npipeline:\n%s",
				label, i, w.Root, w.XML(), g.XML())
		}
		if w.ASCII() != g.ASCII() {
			t.Fatalf("%s fragment %d (%s): ASCII differs\neager:\n%s\npipeline:\n%s",
				label, i, w.Root, w.ASCII(), g.ASCII())
		}
	}
}

// crosscheckOptions is the options grid the crosscheck tests sweep: every
// algorithm × both semantics × {plain, ranked, ranked+limited, limited}.
func crosscheckOptions() []Options {
	var out []Options
	for _, algo := range []Algorithm{ValidRTF, MaxMatch, RawRTF} {
		for _, sem := range []Semantics{AllLCA, SLCAOnly} {
			for _, shape := range []Options{
				{},
				{Rank: true},
				{Rank: true, Limit: 2},
				{Limit: 2},
			} {
				o := shape
				o.Algorithm = algo
				o.Semantics = sem
				out = append(out, o)
			}
		}
	}
	return out
}

// TestPipelineMatchesEagerEngine crosschecks Engine.Search against the
// pre-refactor eager path on the paper's running example and a generated
// DBLP document, for all algorithms and semantics.
func TestPipelineMatchesEagerEngine(t *testing.T) {
	engines := map[string]*Engine{
		"publications": FromTree(paperdata.Publications()),
		"dblp":         crosscheckDBLPEngine(t, 1),
	}
	queries := []string{paperdata.Q1, paperdata.Q2, paperdata.Q3, paperdata.QLiuKeyword}
	for name, e := range engines {
		for _, q := range queries {
			for _, opts := range crosscheckOptions() {
				label := fmt.Sprintf("%s %q %s/%s rank=%v limit=%d",
					name, q, opts.Algorithm, opts.Semantics, opts.Rank, opts.Limit)
				want, err := eagerSearch(e, q, opts)
				if err != nil {
					t.Fatalf("%s: eager: %v", label, err)
				}
				got, err := e.SearchOpts(q, opts)
				if err != nil {
					t.Fatalf("%s: pipeline: %v", label, err)
				}
				if want.Stats.Keywords != nil && !reflect.DeepEqual(want.Stats.Keywords, got.Stats.Keywords) {
					t.Fatalf("%s: keywords %v vs %v", label, want.Stats.Keywords, got.Stats.Keywords)
				}
				if want.Stats.KeywordNodes != got.Stats.KeywordNodes || want.Stats.NumLCAs != got.Stats.NumLCAs {
					t.Fatalf("%s: stats (%d,%d) vs (%d,%d)", label,
						want.Stats.KeywordNodes, want.Stats.NumLCAs,
						got.Stats.KeywordNodes, got.Stats.NumLCAs)
				}
				requireSameFragments(t, label, want.Fragments, got.Fragments)
			}
		}
	}
}

func crosscheckDBLPEngine(t testing.TB, seed int64) *Engine {
	t.Helper()
	w := workload.DBLP()
	specs, err := w.Specs(0, 400.0/20000.0)
	if err != nil {
		t.Fatal(err)
	}
	return FromTree(datagen.DBLP(datagen.DBLPConfig{Seed: seed, NumRecords: 400, Keywords: specs}))
}

// TestPipelineMatchesEagerCorpus crosschecks the streaming Corpus.Search —
// including the bounded top-K merge — against the eager merge.
func TestPipelineMatchesEagerCorpus(t *testing.T) {
	c := NewCorpus()
	c.Add("pubs.xml", FromTree(paperdata.Publications()))
	c.Add("dblp-a.xml", crosscheckDBLPEngine(t, 2))
	c.Add("dblp-b.xml", crosscheckDBLPEngine(t, 3))
	c.Workers = 3

	w := workload.DBLP()
	q, err := w.Expand(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{paperdata.Q1, paperdata.QLiuKeyword, q}
	shapes := []Options{
		{},
		{Rank: true},
		{Rank: true, Limit: 5},
		{Rank: true, Limit: 1},
		{Limit: 5},
	}
	for _, q := range queries {
		for _, base := range shapes {
			for _, algo := range []Algorithm{ValidRTF, MaxMatch, RawRTF} {
				for _, sem := range []Semantics{AllLCA, SLCAOnly} {
					opts := base
					opts.Algorithm = algo
					opts.Semantics = sem
					label := fmt.Sprintf("corpus %q %s/%s rank=%v limit=%d", q, algo, sem, opts.Rank, opts.Limit)
					want, err := eagerCorpusSearch(c, q, opts)
					if err != nil {
						t.Fatalf("%s: eager: %v", label, err)
					}
					got, err := c.SearchOpts(q, opts)
					if err != nil {
						t.Fatalf("%s: pipeline: %v", label, err)
					}
					if !reflect.DeepEqual(want.PerDocument, got.PerDocument) {
						t.Fatalf("%s: PerDocument %v vs %v", label, want.PerDocument, got.PerDocument)
					}
					if want.Stats.KeywordNodes != got.Stats.KeywordNodes || want.Stats.NumLCAs != got.Stats.NumLCAs {
						t.Fatalf("%s: stats (%d,%d) vs (%d,%d)", label,
							want.Stats.KeywordNodes, want.Stats.NumLCAs,
							got.Stats.KeywordNodes, got.Stats.NumLCAs)
					}
					if len(want.Fragments) != len(got.Fragments) {
						t.Fatalf("%s: %d vs %d fragments", label, len(want.Fragments), len(got.Fragments))
					}
					for i := range want.Fragments {
						if want.Fragments[i].Document != got.Fragments[i].Document {
							t.Fatalf("%s fragment %d: document %s vs %s", label, i,
								want.Fragments[i].Document, got.Fragments[i].Document)
						}
					}
					wf := make([]*Fragment, len(want.Fragments))
					gf := make([]*Fragment, len(got.Fragments))
					for i := range want.Fragments {
						wf[i] = want.Fragments[i].Fragment
						gf[i] = got.Fragments[i].Fragment
					}
					requireSameFragments(t, label, wf, gf)
				}
			}
		}
	}
}

// TestLateMaterializationAssemblesOnlySelected pins the contract the
// benchmark relies on: ranked+limited searches assemble exactly Limit
// fragments, not one per candidate.
func TestLateMaterializationAssemblesOnlySelected(t *testing.T) {
	c := NewCorpus()
	c.Add("a.xml", crosscheckDBLPEngine(t, 4))
	c.Add("b.xml", crosscheckDBLPEngine(t, 5))
	c.Add("c.xml", crosscheckDBLPEngine(t, 6))

	// Pick the workload query with the most candidates, so the limit
	// actually discards some.
	w := workload.DBLP()
	const limit = 3
	var query string
	best := 0
	for _, abbrev := range w.Queries {
		q, err := w.Expand(abbrev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.SearchOpts(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Stats.NumLCAs; n > best {
			best, query = n, q
		}
	}
	if best <= limit {
		t.Fatalf("test needs more than %d candidates to be meaningful, best query has %d", limit, best)
	}

	before := corpusAssembled(c)
	res, err := c.SearchOpts(query, Options{Rank: true, Limit: limit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != limit {
		t.Fatalf("got %d fragments, want %d", len(res.Fragments), limit)
	}
	assembled := corpusAssembled(c) - before
	if assembled != limit {
		t.Fatalf("assembled %d fragments for a Limit=%d search over %d candidates", assembled, limit, best)
	}
}

// corpusAssembled sums the materialization counters across the corpus.
func corpusAssembled(c *Corpus) uint64 {
	var n uint64
	for _, e := range c.engines {
		n += e.assembledFragments()
	}
	return n
}

// TestDeprecatedWrappersMatchRequestAPI pins the deprecated pre-Request
// signatures to the context-aware API: each wrapper must produce exactly
// what Search/Compare produce for the equivalent Request (and hence, via
// the crosschecks above, exactly what the old signatures always produced).
func TestDeprecatedWrappersMatchRequestAPI(t *testing.T) {
	e := FromTree(paperdata.Publications())
	opts := Options{Rank: true, Limit: 2}

	wrapped, err := e.SearchOpts(paperdata.Q1, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := e.Search(context.Background(), NewRequest(paperdata.Q1, opts))
	if err != nil {
		t.Fatal(err)
	}
	requireSameFragments(t, "SearchOpts", direct.Fragments, wrapped.Fragments)

	cmpWrapped, err := e.CompareOpts(paperdata.Q1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cmpDirect, err := e.Compare(context.Background(), Request{Query: paperdata.Q1})
	if err != nil {
		t.Fatal(err)
	}
	if cmpWrapped.NumRTFs != cmpDirect.NumRTFs || cmpWrapped.Ratios != cmpDirect.Ratios {
		t.Fatalf("CompareOpts: %+v vs %+v", cmpWrapped.Ratios, cmpDirect.Ratios)
	}

	c := NewCorpus()
	c.Add("pubs", FromTree(paperdata.Publications()))
	cw, err := c.SearchOpts(paperdata.Q1, opts)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := c.Search(context.Background(), NewRequest(paperdata.Q1, opts))
	if err != nil {
		t.Fatal(err)
	}
	if len(cw.Fragments) != len(cd.Fragments) {
		t.Fatalf("Corpus.SearchOpts: %d vs %d fragments", len(cw.Fragments), len(cd.Fragments))
	}
	dw, err := c.SearchDocumentOpts("pubs", paperdata.Q1, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(dw.Fragments) != len(cd.Fragments) {
		t.Fatalf("SearchDocumentOpts: %d vs %d fragments", len(dw.Fragments), len(cd.Fragments))
	}
}
