package xks

// Crosscheck of the cost-based query planner: Strategy is an
// output-identical knob, so a search under Auto must return byte-identical
// fragments to the same search under every fixed strategy — across all
// pruning algorithms, both semantics, and the paging shapes that flip the
// score-without-events candidate stage on. These tests are what lets the
// planner change its mind (new statistics, recalibrated cost model)
// without a correctness review.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"xks/internal/paperdata"
	"xks/internal/workload"
)

// strategyLabel keeps failure messages readable.
func strategyLabel(s Strategy) string { return s.String() }

// TestAutoMatchesFixedStrategiesEngine runs every crosscheck-grid request
// under Auto and under each fixed strategy on a single engine and requires
// identical output — fragments, scores, stats.
func TestAutoMatchesFixedStrategiesEngine(t *testing.T) {
	engines := map[string]*Engine{
		"publications": FromTree(paperdata.Publications()),
		"dblp":         crosscheckDBLPEngine(t, 7),
	}
	queries := []string{paperdata.Q1, paperdata.Q2, paperdata.Q3, paperdata.QLiuKeyword}
	for name, e := range engines {
		for _, q := range queries {
			for _, opts := range crosscheckOptions() {
				auto := NewRequest(q, opts)
				want, err := e.Search(context.Background(), auto)
				if err != nil {
					t.Fatalf("%s %q auto: %v", name, q, err)
				}
				for _, strat := range []Strategy{IndexedEager, ScanMerge} {
					req := auto
					req.Strategy = strat
					label := fmt.Sprintf("%s %q %s/%s rank=%v limit=%d strategy=%s",
						name, q, opts.Algorithm, opts.Semantics, opts.Rank, opts.Limit, strategyLabel(strat))
					got, err := e.Search(context.Background(), req)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !reflect.DeepEqual(want.Stats.Keywords, got.Stats.Keywords) ||
						want.Stats.KeywordNodes != got.Stats.KeywordNodes ||
						want.Stats.NumLCAs != got.Stats.NumLCAs {
						t.Fatalf("%s: stats diverge: auto (%v,%d,%d) vs fixed (%v,%d,%d)", label,
							want.Stats.Keywords, want.Stats.KeywordNodes, want.Stats.NumLCAs,
							got.Stats.Keywords, got.Stats.KeywordNodes, got.Stats.NumLCAs)
					}
					requireSameFragments(t, label, want.Fragments, got.Fragments)
				}
			}
		}
	}
}

// TestAutoMatchesFixedStrategiesCorpus repeats the strategy crosscheck
// through the corpus fan-out — the bounded top-K merge plus the deferred
// score-without-events candidate stage that ranked corpus searches use.
func TestAutoMatchesFixedStrategiesCorpus(t *testing.T) {
	c := NewCorpus()
	c.Add("pubs.xml", FromTree(paperdata.Publications()))
	c.Add("dblp-a.xml", crosscheckDBLPEngine(t, 8))
	c.Add("dblp-b.xml", crosscheckDBLPEngine(t, 9))
	c.Workers = 3

	w := workload.DBLP()
	expanded, err := w.Expand(w.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{paperdata.Q1, paperdata.QLiuKeyword, expanded}
	shapes := []Options{
		{},
		{Rank: true},
		{Rank: true, Limit: 5},
		{Rank: true, Limit: 1},
		{Limit: 5},
	}
	for _, q := range queries {
		for _, base := range shapes {
			for _, algo := range []Algorithm{ValidRTF, MaxMatch, RawRTF} {
				for _, sem := range []Semantics{AllLCA, SLCAOnly} {
					opts := base
					opts.Algorithm = algo
					opts.Semantics = sem
					auto := NewRequest(q, opts)
					want, err := c.Search(context.Background(), auto)
					if err != nil {
						t.Fatalf("corpus %q auto: %v", q, err)
					}
					for _, strat := range []Strategy{IndexedEager, ScanMerge} {
						req := auto
						req.Strategy = strat
						label := fmt.Sprintf("corpus %q %s/%s rank=%v limit=%d strategy=%s",
							q, algo, sem, opts.Rank, opts.Limit, strategyLabel(strat))
						got, err := c.Search(context.Background(), req)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						if !reflect.DeepEqual(want.PerDocument, got.PerDocument) {
							t.Fatalf("%s: PerDocument %v vs %v", label, want.PerDocument, got.PerDocument)
						}
						if len(want.Fragments) != len(got.Fragments) {
							t.Fatalf("%s: %d vs %d fragments", label, len(want.Fragments), len(got.Fragments))
						}
						wf := make([]*Fragment, len(want.Fragments))
						gf := make([]*Fragment, len(got.Fragments))
						for i := range want.Fragments {
							if want.Fragments[i].Document != got.Fragments[i].Document {
								t.Fatalf("%s fragment %d: document %s vs %s", label, i,
									want.Fragments[i].Document, got.Fragments[i].Document)
							}
							wf[i] = want.Fragments[i].Fragment
							gf[i] = got.Fragments[i].Fragment
						}
						requireSameFragments(t, label, wf, gf)
					}
				}
			}
		}
	}
}

// TestResolveStrategyMatchesExecution pins the caching contract: the
// strategy ResolveStrategy reports for a request is exactly the one the
// planner resolves during execution, and it is never Auto.
func TestResolveStrategyMatchesExecution(t *testing.T) {
	e := crosscheckDBLPEngine(t, 10)
	// Workload queries match the generated document, so planning succeeds
	// and resolution must commit to a concrete strategy. (Unmatchable
	// queries fall back to the requested strategy by contract — they error
	// or come back empty before any algorithm runs.)
	w := workload.DBLP()
	var queries []string
	for _, abbrev := range w.Queries[:2] {
		q, err := w.Expand(abbrev)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	for _, q := range queries {
		for _, sem := range []Semantics{AllLCA, SLCAOnly} {
			req := Request{Query: q, Semantics: sem}
			resolved := e.ResolveStrategy(req)
			if resolved == Auto {
				t.Fatalf("%q %v: ResolveStrategy returned Auto", q, sem)
			}
			if sem != SLCAOnly && resolved != ScanMerge {
				t.Fatalf("%q %v: ELCA semantics must resolve to ScanMerge, got %v", q, sem, resolved)
			}
			// Resolution is deterministic for fixed statistics.
			if again := e.ResolveStrategy(req); again != resolved {
				t.Fatalf("%q %v: resolution flapped %v -> %v", q, sem, resolved, again)
			}
			// Fixed requests resolve to themselves.
			for _, strat := range []Strategy{IndexedEager, ScanMerge} {
				fixed := req
				fixed.Strategy = strat
				want := strat
				if sem != SLCAOnly {
					want = ScanMerge
				}
				if got := e.ResolveStrategy(fixed); got != want {
					t.Fatalf("%q %v strategy %v: resolved to %v, want %v", q, sem, strat, got, want)
				}
			}
		}
	}
}

// TestStrategyOutsideCursorFingerprint pins that Strategy is not part of
// the pagination contract: a cursor minted under one strategy must resume
// under another, because the planner may flip between pages as statistics
// refresh and the result set is identical either way.
func TestStrategyOutsideCursorFingerprint(t *testing.T) {
	e := crosscheckDBLPEngine(t, 11)
	// Pick the workload query with the largest SLCA result set, so the
	// first page actually truncates and a second page exists.
	w := workload.DBLP()
	var q string
	var all *Result
	for _, abbrev := range w.Queries {
		expanded, err := w.Expand(abbrev)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Search(context.Background(), Request{Query: expanded, Semantics: SLCAOnly, Rank: true})
		if err != nil {
			t.Fatal(err)
		}
		if all == nil || len(res.Fragments) > len(all.Fragments) {
			q, all = expanded, res
		}
	}
	if len(all.Fragments) < 3 {
		t.Fatalf("need >= 3 fragments to page, best workload query has %d", len(all.Fragments))
	}
	first, err := e.Search(context.Background(), Request{
		Query: q, Semantics: SLCAOnly, Rank: true, Limit: 2, Strategy: IndexedEager,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cursor == "" {
		t.Fatal("no cursor on a truncated page")
	}
	second, err := e.Search(context.Background(), Request{
		Query: q, Semantics: SLCAOnly, Rank: true, Limit: 2,
		Strategy: ScanMerge, Cursor: first.Cursor,
	})
	if err != nil {
		t.Fatalf("cursor minted under IndexedEager rejected under ScanMerge: %v", err)
	}
	requireSameFragments(t, "cursor resume across strategies",
		all.Fragments[2:min(4, len(all.Fragments))], second.Fragments)
}
