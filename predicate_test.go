package xks

import (
	"context"
	"strings"
	"testing"

	"xks/internal/paperdata"
)

// "title:skyline" must match only the title node, not the abstract that
// also contains "skyline".
func TestLabelPredicateRestrictsMatches(t *testing.T) {
	e := FromTree(paperdata.Publications())

	plain, err := e.Search(context.Background(), NewRequest("wong skyline", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := e.Search(context.Background(), NewRequest("wong title:skyline", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Fragments) != 1 || len(pred.Fragments) != 1 {
		t.Fatalf("fragments: plain %d, pred %d", len(plain.Fragments), len(pred.Fragments))
	}
	// The plain query's fragment carries both skyline occurrences (title
	// and abstract); the predicate query's carries only the title.
	var plainSkyline, predSkyline []string
	for _, n := range plain.Fragments[0].KeywordNodes() {
		for _, m := range n.Matched {
			if m == "skyline" {
				plainSkyline = append(plainSkyline, n.Dewey)
			}
		}
	}
	// Matched entries carry the full term syntax for predicate terms.
	for _, n := range pred.Fragments[0].KeywordNodes() {
		for _, m := range n.Matched {
			if m == "title:skyline" {
				predSkyline = append(predSkyline, n.Dewey)
			}
		}
	}
	if len(plainSkyline) != 2 {
		t.Errorf("plain skyline nodes = %v, want both title and abstract", plainSkyline)
	}
	if len(predSkyline) != 1 || predSkyline[0] != "0.2.1.1" {
		t.Errorf("predicate skyline nodes = %v, want only the title 0.2.1.1", predSkyline)
	}
}

// A label-only term ("author:") anchors fragments at structures containing
// that element.
func TestLabelOnlyTerm(t *testing.T) {
	e := FromTree(paperdata.Publications())
	res, err := e.Search(context.Background(), NewRequest("author: skyline", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 {
		t.Fatalf("fragments = %d", len(res.Fragments))
	}
	if res.Fragments[0].Root != "0.2.1" {
		t.Errorf("root = %s, want the skyline article 0.2.1", res.Fragments[0].Root)
	}
	if res.Stats.Keywords[0] != "author:" {
		t.Errorf("display keywords = %v", res.Stats.Keywords)
	}
}

// Predicates that match nothing produce an empty result, like plain
// keywords that match nothing.
func TestPredicateNoMatch(t *testing.T) {
	e := FromTree(paperdata.Publications())
	res, err := e.Search(context.Background(), NewRequest("abstract:wong", Options{})) // "wong" only in a name node
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 0 {
		t.Errorf("fragments = %d, want 0", len(res.Fragments))
	}
	res, err = e.Search(context.Background(), NewRequest("zebra: keyword", Options{})) // no <zebra> elements
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 0 {
		t.Errorf("fragments = %d, want 0", len(res.Fragments))
	}
}

// Malformed predicate terms are errors.
func TestPredicateErrors(t *testing.T) {
	e := FromTree(paperdata.Publications())
	for _, bad := range []string{":", "a:b:c", "title:the"} {
		if _, err := e.Search(context.Background(), NewRequest(bad, Options{})); err == nil {
			t.Errorf("Search(%q) should fail", bad)
		}
	}
}

// Predicate labels are case-insensitive.
func TestPredicateLabelCaseInsensitive(t *testing.T) {
	e := FromTree(paperdata.Publications())
	res, err := e.Search(context.Background(), NewRequest("TITLE:skyline wong", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 {
		t.Errorf("fragments = %d", len(res.Fragments))
	}
}

// Predicates compose with the rest of the pipeline: ranking, comparison and
// the store-backed engine.
func TestPredicateIntegration(t *testing.T) {
	eTree := FromTree(paperdata.Publications())
	res, err := eTree.Search(context.Background(), NewRequest("title:skyline wong", Options{Rank: true}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 || res.Fragments[0].Score <= 0 {
		t.Errorf("ranked predicate search = %+v", res.Fragments)
	}
	cmp, err := eTree.Compare(context.Background(), NewRequest("title:keyword liu", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.NumRTFs == 0 {
		t.Error("Compare with predicate found nothing")
	}
}

func TestPredicateAgainstStoreEngine(t *testing.T) {
	eTree := FromTree(paperdata.Publications())
	eStore := storeEngine(t)
	for _, q := range []string{"title:skyline wong", "author: skyline", "ref:liu keyword"} {
		a, errA := eTree.Search(context.Background(), NewRequest(q, Options{}))
		b, errB := eStore.Search(context.Background(), NewRequest(q, Options{}))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: error mismatch: %v vs %v", q, errA, errB)
		}
		if errA != nil {
			continue
		}
		if len(a.Fragments) != len(b.Fragments) {
			t.Fatalf("%q: %d vs %d fragments", q, len(a.Fragments), len(b.Fragments))
		}
		for i := range a.Fragments {
			if a.Fragments[i].Root != b.Fragments[i].Root || a.Fragments[i].Len() != b.Fragments[i].Len() {
				t.Errorf("%q fragment %d: %s/%d vs %s/%d", q, i,
					a.Fragments[i].Root, a.Fragments[i].Len(),
					b.Fragments[i].Root, b.Fragments[i].Len())
			}
		}
	}
}

// The Q3 result is unchanged when written with explicit predicates that
// mirror the plain semantics.
func TestPredicateEquivalentToPlainWhenUnrestrictive(t *testing.T) {
	e := FromTree(paperdata.Publications())
	plain, err := e.Search(context.Background(), NewRequest(paperdata.Q2, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	// ":liu :keyword" is plain syntax through the colon parser.
	pred, err := e.Search(context.Background(), NewRequest(":liu :keyword", Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Fragments) != len(pred.Fragments) {
		t.Fatalf("fragment counts differ: %d vs %d", len(plain.Fragments), len(pred.Fragments))
	}
	for i := range plain.Fragments {
		if plain.Fragments[i].Root != pred.Fragments[i].Root {
			t.Errorf("fragment %d roots differ", i)
		}
		if !strings.HasPrefix(plain.Fragments[i].ASCII(), pred.Fragments[i].ASCII()[:10]) {
			t.Errorf("fragment %d rendering differs", i)
		}
	}
}
