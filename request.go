package xks

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"xks/internal/concurrent"
	"xks/internal/query"
)

// Sentinel errors, matched with errors.Is. ErrEmptyQuery and
// ErrTooManyTerms are re-exported from internal/query so serving layers can
// map them to status codes (400) without string matching; ErrUnknownDocument
// is wrapped by document-filtered searches when the named document is not in
// the corpus (404).
var (
	// ErrEmptyQuery reports a query with no searchable terms (empty, all
	// stop words, or unsearchable predicates).
	ErrEmptyQuery = query.ErrEmptyQuery
	// ErrTooManyTerms reports a query exceeding the 64-term mask limit.
	ErrTooManyTerms = query.ErrTooManyTerms
	// ErrInternal reports a recovered panic somewhere in the pipeline —
	// re-exported from internal/concurrent so serving layers can map it to
	// 500 and count recoveries. Unwrap with errors.As to a *PanicError for
	// the captured stack.
	ErrInternal = concurrent.ErrInternal
)

// PanicError is the structured form of a recovered pipeline panic: the
// recovered value plus the stack captured at the recovery site. It wraps
// ErrInternal. Serving layers log the stack; clients see only the sentinel.
type PanicError = concurrent.PanicError

// Request describes one search: the query text, an optional document
// filter, the algorithm knobs, and the pagination window. It is the unit of
// serving — every search entrypoint (Engine.Search, Engine.Fragments,
// Corpus.Search, the service and HTTP layers) takes a context.Context and a
// Request, so one value carries everything a request needs and cancellation
// or deadlines propagate end to end.
//
// The zero value of every field is the default: ValidRTF pruning, AllLCA
// semantics, document order, no limit, first page, no per-request timeout.
type Request struct {
	// Query is the keyword query; terms may carry XSearch-style label
	// predicates ("title:xml", "author:"). See internal/query.
	Query string
	// Document restricts a corpus search to one named document when
	// non-empty. Single-engine searches ignore it.
	Document string
	// Algorithm is the pruning mechanism (default ValidRTF).
	Algorithm Algorithm
	// Semantics picks the fragment roots (default AllLCA).
	Semantics Semantics
	// Strategy selects the LCA evaluation strategy. The default, Auto,
	// engages the cost-based planner: posting-list statistics pick between
	// the scan-merge and indexed-eager algorithms, order the k-way merge
	// rarest-first, and enable dispatch galloping. Fixed strategies pin
	// the algorithm and run in query order (the planner-off baseline).
	// Every strategy returns byte-identical results — the knob only moves
	// work around — so it is not part of the cursor fingerprint; caching
	// layers key on the planner-resolved strategy instead.
	Strategy Strategy
	// ExactContent replaces the (min,max) cID approximation of rule 2(b)
	// with exact tree-content-set comparison (ablation switch).
	ExactContent bool
	// Rank orders fragments by descending relevance score instead of
	// document order.
	Rank bool
	// Limit bounds the returned fragments when positive — the page size.
	Limit int
	// Offset skips that many fragments of the result order before Limit
	// applies.
	//
	// Deprecated: resume with Cursor instead. A raw offset silently shifts
	// when the index mutates mid-scroll; the cursor pins the page boundary
	// to the data generation it was issued at. Offset keeps working as a
	// shim, and a non-empty Cursor takes precedence over it.
	Offset int
	// Cursor resumes a previous page: pass the Cursor of an earlier
	// result to continue the scroll. The token is validated before the
	// pipeline runs — ErrStaleCursor when the data mutated since it was
	// issued, ErrCursorMismatch when the order-defining fields of this
	// request differ from the one it was issued for, ErrBadCursor when it
	// does not decode. Empty means the first page.
	Cursor Cursor
	// Budget selects deadline behavior (default Strict): BestEffort turns
	// a deadline that expires mid-materialization into a partial page with
	// Results.Truncated set, instead of an error.
	Budget Budget
	// Timeout, when positive, derives a deadline from the caller's context
	// for this request alone. It does not affect cache keys: a result is
	// the same however long it was allowed to take.
	Timeout time.Duration
}

// Budget selects how a request treats its deadline.
type Budget int

const (
	// Strict aborts the pipeline with ctx.Err() when the deadline expires
	// (the default): the caller gets an error, never a partial page.
	Strict Budget = iota
	// BestEffort converts a deadline that expires mid-pipeline into a
	// partial result: the fragments finished so far come back with
	// Truncated set (and a Cursor to retry from the same spot) instead of
	// a context.DeadlineExceeded error. Cancellation (context.Canceled —
	// the caller went away) still aborts with the error either way.
	BestEffort
)

func (b Budget) String() string {
	if b == BestEffort {
		return "BestEffort"
	}
	return "Strict"
}

// NewRequest builds a Request from the legacy query+Options pair, easing
// migration from the deprecated (query string, opts Options) signatures.
func NewRequest(queryText string, opts Options) Request {
	return Request{
		Query:        queryText,
		Algorithm:    opts.Algorithm,
		Semantics:    opts.Semantics,
		ExactContent: opts.ExactContent,
		Rank:         opts.Rank,
		Limit:        opts.Limit,
	}
}

// Canonical returns the request in canonical form: the query
// whitespace-normalized and case-folded (deeper normalization — stemming,
// stop words — happens inside the engine) and negative Limit/Offset clamped
// to zero. Two requests with equal canonical forms produce the same result,
// which is what caching layers key on; Timeout and Budget are deliberately
// not part of that equality and are cleared — a result is the same however
// long it was allowed to take, and a BestEffort request that completes
// equals its Strict twin (truncated partial pages are never cached).
// Cursor is left as-is: it resolves to an Offset only against a live data
// generation (ResolveCursor), which serving layers do before keying.
func (r Request) Canonical() Request {
	r.Query = strings.Join(strings.Fields(strings.ToLower(r.Query)), " ")
	if r.Limit < 0 {
		r.Limit = 0
	}
	if r.Offset < 0 {
		r.Offset = 0
	}
	r.Timeout = 0
	r.Budget = Strict
	return r
}

// fingerprint hashes the order-defining request fields — everything that
// determines the identity and ordering of the full result list, but not
// the window (Limit/Offset/Cursor), the deadline, or the budget. Cursors
// embed it so a token cannot be replayed against a different query.
func (r Request) fingerprint() uint64 {
	r = r.Canonical()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d:%s%d:%s%d.%d.%t.%t",
		len(r.Query), r.Query, len(r.Document), r.Document,
		r.Algorithm, r.Semantics, r.ExactContent, r.Rank)
	return h.Sum64()
}

// ResolveCursor validates r.Cursor against the current data generation gen
// and folds it into the pagination window: on success the returned request
// has Offset set to the encoded resume position and Cursor cleared, so
// downstream stages (and cache keys) see one canonical window regardless
// of how the caller expressed it. A request without a cursor is returned
// unchanged. Errors wrap ErrBadCursor (undecodable), ErrCursorMismatch
// (issued for a different query shape), or ErrStaleCursor (issued at an
// older generation — the scroll must restart from the first page).
//
// Search entrypoints call this themselves with their own generation;
// serving layers that cache (internal/service) resolve earlier, against
// the same generation they tag cache entries with.
func (r Request) ResolveCursor(gen uint64) (Request, error) {
	if r.Cursor == "" {
		return r, nil
	}
	st, err := r.Cursor.decode()
	if err != nil {
		return r, err
	}
	if st.fp != r.fingerprint() {
		return r, fmt.Errorf("%w: the cursor's query shape does not match this request", ErrCursorMismatch)
	}
	if st.gen != gen {
		return r, fmt.Errorf("%w: issued at generation %d, data is now at %d; restart from the first page",
			ErrStaleCursor, st.gen, gen)
	}
	r.Offset = st.offset
	r.Cursor = ""
	return r, nil
}

// applyTimeout derives the request deadline from ctx when Timeout is set.
// The returned cancel func is always non-nil.
func (r Request) applyTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.Timeout > 0 {
		return context.WithTimeout(ctx, r.Timeout)
	}
	return ctx, func() {}
}

// clampPaging zeroes negative Limit/Offset at the execution entrypoints,
// so windows and NextOffset cursors match the canonical form caching
// layers key on — a raw negative offset must not execute differently from
// its canonicalized cache key.
func (r Request) clampPaging() Request {
	if r.Limit < 0 {
		r.Limit = 0
	}
	if r.Offset < 0 {
		r.Offset = 0
	}
	return r
}
