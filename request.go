package xks

import (
	"context"
	"strings"
	"time"

	"xks/internal/query"
)

// Sentinel errors, matched with errors.Is. ErrEmptyQuery and
// ErrTooManyTerms are re-exported from internal/query so serving layers can
// map them to status codes (400) without string matching; ErrUnknownDocument
// is wrapped by document-filtered searches when the named document is not in
// the corpus (404).
var (
	// ErrEmptyQuery reports a query with no searchable terms (empty, all
	// stop words, or unsearchable predicates).
	ErrEmptyQuery = query.ErrEmptyQuery
	// ErrTooManyTerms reports a query exceeding the 64-term mask limit.
	ErrTooManyTerms = query.ErrTooManyTerms
)

// Request describes one search: the query text, an optional document
// filter, the algorithm knobs, and the pagination window. It is the unit of
// serving — every search entrypoint (Engine.Search, Engine.Fragments,
// Corpus.Search, the service and HTTP layers) takes a context.Context and a
// Request, so one value carries everything a request needs and cancellation
// or deadlines propagate end to end.
//
// The zero value of every field is the default: ValidRTF pruning, AllLCA
// semantics, document order, no limit, first page, no per-request timeout.
type Request struct {
	// Query is the keyword query; terms may carry XSearch-style label
	// predicates ("title:xml", "author:"). See internal/query.
	Query string
	// Document restricts a corpus search to one named document when
	// non-empty. Single-engine searches ignore it.
	Document string
	// Algorithm is the pruning mechanism (default ValidRTF).
	Algorithm Algorithm
	// Semantics picks the fragment roots (default AllLCA).
	Semantics Semantics
	// ExactContent replaces the (min,max) cID approximation of rule 2(b)
	// with exact tree-content-set comparison (ablation switch).
	ExactContent bool
	// Rank orders fragments by descending relevance score instead of
	// document order.
	Rank bool
	// Limit bounds the returned fragments when positive — the page size.
	Limit int
	// Offset skips that many fragments of the result order before Limit
	// applies; results carry the offset of the next page so callers can
	// cursor through large result sets without assembling them at once.
	Offset int
	// Timeout, when positive, derives a deadline from the caller's context
	// for this request alone. It does not affect cache keys: a result is
	// the same however long it was allowed to take.
	Timeout time.Duration
}

// NewRequest builds a Request from the legacy query+Options pair, easing
// migration from the deprecated (query string, opts Options) signatures.
func NewRequest(queryText string, opts Options) Request {
	return Request{
		Query:        queryText,
		Algorithm:    opts.Algorithm,
		Semantics:    opts.Semantics,
		ExactContent: opts.ExactContent,
		Rank:         opts.Rank,
		Limit:        opts.Limit,
	}
}

// Canonical returns the request in canonical form: the query
// whitespace-normalized and case-folded (deeper normalization — stemming,
// stop words — happens inside the engine) and negative Limit/Offset clamped
// to zero. Two requests with equal canonical forms produce the same result,
// which is what caching layers key on; Timeout is deliberately not part of
// that equality and is cleared.
func (r Request) Canonical() Request {
	r.Query = strings.Join(strings.Fields(strings.ToLower(r.Query)), " ")
	if r.Limit < 0 {
		r.Limit = 0
	}
	if r.Offset < 0 {
		r.Offset = 0
	}
	r.Timeout = 0
	return r
}

// applyTimeout derives the request deadline from ctx when Timeout is set.
// The returned cancel func is always non-nil.
func (r Request) applyTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.Timeout > 0 {
		return context.WithTimeout(ctx, r.Timeout)
	}
	return ctx, func() {}
}

// clampPaging zeroes negative Limit/Offset at the execution entrypoints,
// so windows and NextOffset cursors match the canonical form caching
// layers key on — a raw negative offset must not execute differently from
// its canonicalized cache key.
func (r Request) clampPaging() Request {
	if r.Limit < 0 {
		r.Limit = 0
	}
	if r.Offset < 0 {
		r.Offset = 0
	}
	return r
}
