package xks

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"xks/internal/paperdata"
)

func TestRequestCanonical(t *testing.T) {
	r := Request{Query: "  Liu   KEYWORD ", Limit: -3, Offset: -1, Timeout: time.Second}
	c := r.Canonical()
	if c.Query != "liu keyword" {
		t.Errorf("Query = %q", c.Query)
	}
	if c.Limit != 0 || c.Offset != 0 || c.Timeout != 0 {
		t.Errorf("Limit/Offset/Timeout = %d/%d/%v, want zeros", c.Limit, c.Offset, c.Timeout)
	}
	// Canonicalization is idempotent and preserves the algorithm knobs.
	r2 := Request{Query: "a b", Algorithm: MaxMatch, Semantics: SLCAOnly, Rank: true, Limit: 4, Offset: 8}
	if got := r2.Canonical(); got != r2 {
		t.Errorf("Canonical() = %+v, want unchanged %+v", got, r2)
	}
}

func TestNewRequestMapsOptions(t *testing.T) {
	opts := Options{Algorithm: MaxMatch, Semantics: SLCAOnly, ExactContent: true, Rank: true, Limit: 7}
	req := NewRequest("q", opts)
	want := Request{Query: "q", Algorithm: MaxMatch, Semantics: SLCAOnly, ExactContent: true, Rank: true, Limit: 7}
	if req != want {
		t.Errorf("NewRequest = %+v, want %+v", req, want)
	}
}

// TestEnginePagination walks a multi-fragment result page by page via
// NextOffset and asserts the concatenation equals the unpaged result.
func TestEnginePagination(t *testing.T) {
	e, queries := figure5Engine(t)
	q := richestQuery(t, e, queries)
	for _, rank := range []bool{false, true} {
		full, err := e.Search(context.Background(), Request{Query: q, Rank: rank})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Fragments) < 3 {
			t.Skipf("query %q yields %d fragments; need a few pages", q, len(full.Fragments))
		}
		if full.NextOffset != -1 {
			t.Fatalf("unpaged search: NextOffset = %d, want -1", full.NextOffset)
		}

		var pages []*Fragment
		req := Request{Query: q, Rank: rank, Limit: 2}
		for {
			res, err := e.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, res.Fragments...)
			if res.NextOffset < 0 {
				break
			}
			if res.NextOffset != req.Offset+len(res.Fragments) {
				t.Fatalf("NextOffset = %d after offset %d + %d fragments", res.NextOffset, req.Offset, len(res.Fragments))
			}
			req.Offset = res.NextOffset
		}
		if len(pages) != len(full.Fragments) {
			t.Fatalf("rank=%v: paged walk yielded %d fragments, full search %d", rank, len(pages), len(full.Fragments))
		}
		for i := range pages {
			if pages[i].Root != full.Fragments[i].Root || pages[i].Score != full.Fragments[i].Score {
				t.Fatalf("rank=%v fragment %d: page %s/%v vs full %s/%v",
					rank, i, pages[i].Root, pages[i].Score, full.Fragments[i].Root, full.Fragments[i].Score)
			}
		}

		// An offset past the end is an empty page, not an error.
		res, err := e.Search(context.Background(), Request{Query: q, Rank: rank, Offset: len(full.Fragments) + 5})
		if err != nil || len(res.Fragments) != 0 || res.NextOffset != -1 {
			t.Fatalf("past-the-end page: %d fragments, NextOffset %d, err %v", len(res.Fragments), res.NextOffset, err)
		}
	}
}

// TestCorpusPagination does the same walk over the streamed corpus merge,
// where ranked pages come out of the bounded top-K heap.
func TestCorpusPagination(t *testing.T) {
	c, q := corpusForCancel(t)
	for _, rank := range []bool{false, true} {
		full, err := c.Search(context.Background(), Request{Query: q, Rank: rank})
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Fragments) < 4 {
			t.Skipf("query %q yields %d fragments; need a few pages", q, len(full.Fragments))
		}

		var pages []CorpusFragment
		req := Request{Query: q, Rank: rank, Limit: 3}
		for {
			res, err := c.Search(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			pages = append(pages, res.Fragments...)
			if res.NextOffset < 0 {
				break
			}
			req.Offset = res.NextOffset
		}
		if len(pages) != len(full.Fragments) {
			t.Fatalf("rank=%v: paged walk yielded %d fragments, full search %d", rank, len(pages), len(full.Fragments))
		}
		for i := range pages {
			if pages[i].Document != full.Fragments[i].Document || pages[i].Root != full.Fragments[i].Root {
				t.Fatalf("rank=%v fragment %d: page %s/%s vs full %s/%s", rank, i,
					pages[i].Document, pages[i].Root, full.Fragments[i].Document, full.Fragments[i].Root)
			}
		}
	}
}

// TestNegativePagingClampedAtExecution: a raw negative Offset/Limit must
// execute exactly like its canonicalized (clamped) form — caching layers
// key on the canonical request, so a divergent execution would poison the
// cache entry legitimate requests share.
func TestNegativePagingClampedAtExecution(t *testing.T) {
	c, q := corpusForCancel(t)
	want, err := c.Search(context.Background(), Request{Query: q, Rank: true, Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Search(context.Background(), Request{Query: q, Rank: true, Limit: 10, Offset: -5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fragments) != len(want.Fragments) || got.NextOffset != want.NextOffset {
		t.Fatalf("negative offset: %d fragments / NextOffset %d, want %d / %d",
			len(got.Fragments), got.NextOffset, len(want.Fragments), want.NextOffset)
	}
	for i := range got.Fragments {
		if got.Fragments[i].Root != want.Fragments[i].Root {
			t.Fatalf("fragment %d: %s vs %s", i, got.Fragments[i].Root, want.Fragments[i].Root)
		}
	}
	// Negative Limit means unlimited, same as the canonical zero.
	e := c.Engine(c.Names()[0])
	full, err := e.Search(context.Background(), Request{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := e.Search(context.Background(), Request{Query: q, Limit: -1, Offset: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(neg.Fragments) != len(full.Fragments) {
		t.Fatalf("negative limit: %d fragments, want %d", len(neg.Fragments), len(full.Fragments))
	}
}

// TestHugePaginationWindowIsSafe is the regression test for the top-K
// preallocation: a request paging absurdly far past the result set — up to
// an Offset+Limit that overflows int — must return an empty page cheaply,
// not preallocate a window-sized heap or panic.
func TestHugePaginationWindowIsSafe(t *testing.T) {
	c, q := corpusForCancel(t)
	for _, off := range []int{1 << 30, int(^uint(0) >> 1)} { // 1Gi, MaxInt
		res, err := c.Search(context.Background(), Request{Query: q, Rank: true, Limit: 10, Offset: off})
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if len(res.Fragments) != 0 || res.NextOffset != -1 {
			t.Fatalf("offset %d: %d fragments, NextOffset %d", off, len(res.Fragments), res.NextOffset)
		}
	}
}

// TestCorpusSearchDocumentFilter pins Request.Document routing: a corpus
// search with the filter set equals SearchDocument, and an unknown name
// fails with ErrUnknownDocument.
func TestCorpusSearchDocumentFilter(t *testing.T) {
	c := NewCorpus()
	c.Add("pubs", FromTree(paperdata.Publications()))
	c.Add("team", FromTree(paperdata.Team()))

	via, err := c.Search(context.Background(), Request{Query: "liu keyword", Document: "pubs"})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.SearchDocument(context.Background(), "pubs", Request{Query: "liu keyword"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(via.PerDocument, direct.PerDocument) || len(via.Fragments) != len(direct.Fragments) {
		t.Fatalf("filtered Search %+v vs SearchDocument %+v", via.PerDocument, direct.PerDocument)
	}
	if _, err := c.Search(context.Background(), Request{Query: "liu", Document: "absent"}); !errors.Is(err, ErrUnknownDocument) {
		t.Fatalf("unknown document filter: err = %v", err)
	}
}

// TestFragmentsStreams pins the streaming iterator: it yields the same
// fragments as Search in the same order, and breaking early materializes
// only the consumed prefix.
func TestFragmentsStreams(t *testing.T) {
	e, queries := figure5Engine(t)
	q := richestQuery(t, e, queries)
	full, err := e.Search(context.Background(), Request{Query: q, Rank: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Fragments) < 3 {
		t.Skipf("query %q yields %d fragments; need a few to stream", q, len(full.Fragments))
	}

	var streamed []*Fragment
	for f, err := range e.Fragments(context.Background(), Request{Query: q, Rank: true}) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, f)
	}
	if len(streamed) != len(full.Fragments) {
		t.Fatalf("streamed %d fragments, Search returned %d", len(streamed), len(full.Fragments))
	}
	for i := range streamed {
		if streamed[i].Root != full.Fragments[i].Root || streamed[i].Score != full.Fragments[i].Score {
			t.Fatalf("fragment %d: streamed %s/%v vs %s/%v", i,
				streamed[i].Root, streamed[i].Score, full.Fragments[i].Root, full.Fragments[i].Score)
		}
	}

	// Early break: exactly the consumed fragments are assembled.
	before := e.assembledFragments()
	n := 0
	for _, err := range e.Fragments(context.Background(), Request{Query: q, Rank: true}) {
		if err != nil {
			t.Fatal(err)
		}
		if n++; n == 2 {
			break
		}
	}
	if assembled := e.assembledFragments() - before; assembled != 2 {
		t.Fatalf("early break assembled %d fragments, want 2", assembled)
	}

	// A cancelled context surfaces as a yielded error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var got error
	for _, err := range e.Fragments(ctx, Request{Query: q}) {
		got = err
		break
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("cancelled iterator yielded err = %v", got)
	}

	// An unsearchable query yields its error.
	got = nil
	for _, err := range e.Fragments(context.Background(), Request{Query: "the of"}) {
		got = err
	}
	if !errors.Is(got, ErrEmptyQuery) {
		t.Fatalf("unsearchable query yielded err = %v, want ErrEmptyQuery", got)
	}
}
