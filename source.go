package xks

import (
	"fmt"
	"io"
	"strings"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/nid"
	"xks/internal/store"
	"xks/internal/xmltree"
)

// docSource abstracts where node labels, content and rendering come from:
// the parsed tree (FromTree / Load*) or the shredded store (FromStore).
// The hot path addresses nodes by table ID (labelOfID/contentOfID/
// nodeTextID — constant-time, allocation-free lookups); the code-based
// forms remain for the reference/eager paths and label-predicate display.
// Renderers receive the kept node set twice: kept is the ordered
// (pre-order) slice pruning produced, keep the same set keyed by dewey key
// — the tree renderer wants the map, the store renderer the slice.
type docSource interface {
	labelOf(c dewey.Code) string
	contentOf(c dewey.Code) []string
	nodeText(c dewey.Code) string
	labelOfID(id nid.ID) string
	contentOfID(id nid.ID) []string
	nodeTextID(id nid.ID) string
	renderASCII(root dewey.Code, kept []dewey.Code, keep map[string]bool) string
	renderXML(root dewey.Code, kept []dewey.Code, keep map[string]bool) string
	// renderXMLTo streams the XML rendering straight into w — the
	// backpressure-friendly path the NDJSON streaming endpoint uses, so a
	// large fragment never buffers whole in server memory.
	renderXMLTo(w io.Writer, root dewey.Code, kept []dewey.Code, keep map[string]bool) error
}

// treeSource serves everything from the in-memory document tree. nodes
// lists the tree in pre-order, so a node table ID doubles as an index into
// it (the engine's table is built over the same pre-order walk); words
// caches each node's analyzed content set so the pruning hot path never
// re-runs the analyzer.
type treeSource struct {
	tree  *xmltree.Tree
	an    *analysis.Analyzer
	nodes []*xmltree.Node
	words [][]string
}

func newTreeSource(t *xmltree.Tree, an *analysis.Analyzer) *treeSource {
	s := &treeSource{tree: t, an: an}
	s.refresh()
	return s
}

// refresh rebuilds the ID-aligned caches after the tree changed (the
// engine's append path renumbers IDs).
func (s *treeSource) refresh() {
	s.nodes = s.tree.Nodes()
	s.words = make([][]string, len(s.nodes))
	for i, n := range s.nodes {
		s.words[i] = s.an.ContentSet(n.ContentPieces()...)
	}
}

func (s *treeSource) labelOf(c dewey.Code) string {
	if n := s.tree.NodeAt(c); n != nil {
		return n.Label
	}
	return ""
}

func (s *treeSource) contentOf(c dewey.Code) []string {
	if n := s.tree.NodeAt(c); n != nil {
		return s.an.ContentSet(n.ContentPieces()...)
	}
	return nil
}

func (s *treeSource) nodeText(c dewey.Code) string {
	if n := s.tree.NodeAt(c); n != nil {
		return n.Text
	}
	return ""
}

func (s *treeSource) labelOfID(id nid.ID) string {
	if int(id) < len(s.nodes) {
		return s.nodes[id].Label
	}
	return ""
}

func (s *treeSource) contentOfID(id nid.ID) []string {
	if int(id) < len(s.words) {
		return s.words[id]
	}
	return nil
}

func (s *treeSource) nodeTextID(id nid.ID) string {
	if int(id) < len(s.nodes) {
		return s.nodes[id].Text
	}
	return ""
}

func (s *treeSource) renderASCII(root dewey.Code, _ []dewey.Code, keep map[string]bool) string {
	n := s.tree.NodeAt(root)
	if n == nil {
		return ""
	}
	return xmltree.ASCIITree(n, keep)
}

func (s *treeSource) renderXML(root dewey.Code, _ []dewey.Code, keep map[string]bool) string {
	n := s.tree.NodeAt(root)
	if n == nil {
		return ""
	}
	var b strings.Builder
	if err := xmltree.WriteFragmentXML(&b, n, keep); err != nil {
		return ""
	}
	return b.String()
}

func (s *treeSource) renderXMLTo(w io.Writer, root dewey.Code, _ []dewey.Code, keep map[string]bool) error {
	n := s.tree.NodeAt(root)
	if n == nil {
		return nil
	}
	return xmltree.WriteFragmentXML(w, n, keep)
}

// storeSource serves labels and content from the shredded tables. Node IDs
// equal element row indices (store.BuildIndex builds the table over the
// element rows in order), so ID lookups are direct row accesses. Original
// text values are not stored (only their content words are), so rendering
// shows the element skeleton with each node's content words.
type storeSource struct {
	st *store.Store
}

func (s *storeSource) labelOf(c dewey.Code) string { return s.st.LabelOf(c) }

func (s *storeSource) contentOf(c dewey.Code) []string { return s.st.ContentOf(c) }

func (s *storeSource) nodeText(c dewey.Code) string { return "" }

func (s *storeSource) labelOfID(id nid.ID) string { return s.st.LabelAt(int(id)) }

func (s *storeSource) contentOfID(id nid.ID) []string { return s.st.ContentAt(int(id)) }

func (s *storeSource) nodeTextID(id nid.ID) string { return "" }

func (s *storeSource) renderASCII(root dewey.Code, kept []dewey.Code, _ map[string]bool) string {
	var b strings.Builder
	for _, c := range kept {
		b.WriteString(strings.Repeat("  ", len(c)-len(root)))
		fmt.Fprintf(&b, "%s (%s)", c, s.st.LabelOf(c))
		if words := s.st.ContentOf(c); len(words) > 0 {
			fmt.Fprintf(&b, " {%s}", strings.Join(words, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (s *storeSource) renderXML(root dewey.Code, kept []dewey.Code, keep map[string]bool) string {
	var b strings.Builder
	if err := s.renderXMLTo(&b, root, kept, keep); err != nil {
		return ""
	}
	return b.String()
}

func (s *storeSource) renderXMLTo(w io.Writer, _ dewey.Code, kept []dewey.Code, _ map[string]bool) error {
	var err error
	var stack []dewey.Code
	closeTo := func(depth int) {
		for err == nil && len(stack) > depth {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			_, err = fmt.Fprintf(w, "%s</%s>\n", strings.Repeat("  ", len(stack)), s.st.LabelOf(top))
		}
	}
	for _, c := range kept {
		for err == nil && len(stack) > 0 && !stack[len(stack)-1].IsAncestorOf(c) {
			closeTo(len(stack) - 1)
		}
		if err != nil {
			return err
		}
		ind := strings.Repeat("  ", len(stack))
		label := s.st.LabelOf(c)
		if _, err = fmt.Fprintf(w, "%s<%s>", ind, label); err != nil {
			return err
		}
		if words := s.st.ContentOf(c); len(words) > 0 {
			if _, err = io.WriteString(w, strings.Join(words, " ")); err != nil {
				return err
			}
		}
		if _, err = io.WriteString(w, "\n"); err != nil {
			return err
		}
		// Reopen: we emitted the start tag inline; push for closing later.
		stack = append(stack, c)
	}
	closeTo(0)
	return err
}
