package xks

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"xks/internal/analysis"
	"xks/internal/dewey"
	"xks/internal/nid"
	"xks/internal/store"
	"xks/internal/xmltree"
)

// docSource abstracts where node labels, content and rendering come from:
// the parsed tree (FromTree / Load*) or the shredded store (FromStore).
// The hot path addresses nodes by table ID (labelOfID/contentOfID/
// nodeTextID — constant-time, allocation-free lookups); the code-based
// forms remain for the reference/eager paths and label-predicate display.
// Renderers receive the kept node set twice: kept is the ordered
// (pre-order) slice pruning produced, keep the same set keyed by dewey key
// — the tree renderer wants the map, the store renderer the slice.
type docSource interface {
	labelOf(c dewey.Code) string
	contentOf(c dewey.Code) []string
	nodeText(c dewey.Code) string
	labelOfID(id nid.ID) string
	contentOfID(id nid.ID) []string
	nodeTextID(id nid.ID) string
	renderASCII(root dewey.Code, kept []dewey.Code, keep map[string]bool) string
	renderXML(root dewey.Code, kept []dewey.Code, keep map[string]bool) string
	// renderXMLTo streams the XML rendering straight into w — the
	// backpressure-friendly path the NDJSON streaming endpoint uses, so a
	// large fragment never buffers whole in server memory.
	renderXMLTo(w io.Writer, root dewey.Code, kept []dewey.Code, keep map[string]bool) error
}

// treeSource serves everything from the in-memory document tree.
//
// Concurrency: the tail-append write path mutates the tree (AppendChild
// touches the parent's child slice and the tree's key map) while readers
// walk it, so structural access is guarded by mu — shared for NodeAt
// lookups and renders, exclusive for appendChild. The ID-aligned caches
// live in an atomically swapped srcState instead: the hot path
// (labelOfID/contentOfID during pruning and scoring) stays lock-free.
// Appends extend the arrays and publish a longer state; a reader that
// loaded an older state never indexes past its own length, so earlier
// prefixes stay immutable. Snapshot renders of pre-append states remain
// byte-identical because appends only add last children, which keep-map
// filtering excludes.
type treeSource struct {
	mu    sync.RWMutex // guards tree structure (walks and renders vs appendChild)
	tree  *xmltree.Tree
	an    *analysis.Analyzer
	state atomic.Pointer[srcState]
}

// srcState is one published version of the pre-order node list and each
// node's analyzed content set. A node table ID doubles as an index into
// both (the engine's table is built over the same pre-order walk).
type srcState struct {
	nodes []*xmltree.Node
	words [][]string
}

func newTreeSource(t *xmltree.Tree, an *analysis.Analyzer) *treeSource {
	s := &treeSource{tree: t, an: an}
	s.refresh()
	return s
}

// refresh rebuilds the ID-aligned caches from scratch after the tree
// changed shape (the renumbering rebuild path).
func (s *treeSource) refresh() {
	nodes := s.tree.Nodes()
	words := make([][]string, len(nodes))
	for i, n := range nodes {
		words[i] = s.an.ContentSet(n.ContentPieces()...)
	}
	s.state.Store(&srcState{nodes: nodes, words: words})
}

// appendChild splices e under parent as its last child (exclusive lock —
// readers walking the tree see either before or after, never a torn
// child slice) and returns the attached subtree root.
func (s *treeSource) appendChild(parent dewey.Code, e xmltree.E) (*xmltree.Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.AppendChild(parent, e)
}

// extend publishes a state with the new tail nodes appended — the delta
// append path, where IDs of existing nodes are stable and only the tail
// grows.
func (s *treeSource) extend(nodes []*xmltree.Node, words [][]string) {
	st := s.state.Load()
	s.state.Store(&srcState{
		nodes: append(st.nodes[:len(st.nodes):len(st.nodes)], nodes...),
		words: append(st.words[:len(st.words):len(st.words)], words...),
	})
}

func (s *treeSource) nodeAt(c dewey.Code) *xmltree.Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.NodeAt(c)
}

func (s *treeSource) labelOf(c dewey.Code) string {
	if n := s.nodeAt(c); n != nil {
		return n.Label
	}
	return ""
}

func (s *treeSource) contentOf(c dewey.Code) []string {
	if n := s.nodeAt(c); n != nil {
		return s.an.ContentSet(n.ContentPieces()...)
	}
	return nil
}

func (s *treeSource) nodeText(c dewey.Code) string {
	if n := s.nodeAt(c); n != nil {
		return n.Text
	}
	return ""
}

func (s *treeSource) labelOfID(id nid.ID) string {
	if st := s.state.Load(); int(id) < len(st.nodes) {
		return st.nodes[id].Label
	}
	return ""
}

func (s *treeSource) contentOfID(id nid.ID) []string {
	if st := s.state.Load(); int(id) < len(st.words) {
		return st.words[id]
	}
	return nil
}

func (s *treeSource) nodeTextID(id nid.ID) string {
	if st := s.state.Load(); int(id) < len(st.nodes) {
		return st.nodes[id].Text
	}
	return ""
}

func (s *treeSource) renderASCII(root dewey.Code, _ []dewey.Code, keep map[string]bool) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.tree.NodeAt(root)
	if n == nil {
		return ""
	}
	return xmltree.ASCIITree(n, keep)
}

func (s *treeSource) renderXML(root dewey.Code, _ []dewey.Code, keep map[string]bool) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.tree.NodeAt(root)
	if n == nil {
		return ""
	}
	var b strings.Builder
	if err := xmltree.WriteFragmentXML(&b, n, keep); err != nil {
		return ""
	}
	return b.String()
}

func (s *treeSource) renderXMLTo(w io.Writer, root dewey.Code, _ []dewey.Code, keep map[string]bool) error {
	// Held for the duration of the streamed write: a slow consumer delays
	// writers, but never corrupts them. Appends are rare relative to reads
	// and the fragments are small; revisit with a tee buffer if needed.
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.tree.NodeAt(root)
	if n == nil {
		return nil
	}
	return xmltree.WriteFragmentXML(w, n, keep)
}

// storeSource serves labels and content from the shredded tables. Node IDs
// equal element row indices (store.BuildIndex builds the table over the
// element rows in order), so ID lookups are direct row accesses. Original
// text values are not stored (only their content words are), so rendering
// shows the element skeleton with each node's content words.
type storeSource struct {
	st *store.Store
}

func (s *storeSource) labelOf(c dewey.Code) string { return s.st.LabelOf(c) }

func (s *storeSource) contentOf(c dewey.Code) []string { return s.st.ContentOf(c) }

func (s *storeSource) nodeText(c dewey.Code) string { return "" }

func (s *storeSource) labelOfID(id nid.ID) string { return s.st.LabelAt(int(id)) }

func (s *storeSource) contentOfID(id nid.ID) []string { return s.st.ContentAt(int(id)) }

func (s *storeSource) nodeTextID(id nid.ID) string { return "" }

func (s *storeSource) renderASCII(root dewey.Code, kept []dewey.Code, _ map[string]bool) string {
	var b strings.Builder
	for _, c := range kept {
		b.WriteString(strings.Repeat("  ", len(c)-len(root)))
		fmt.Fprintf(&b, "%s (%s)", c, s.st.LabelOf(c))
		if words := s.st.ContentOf(c); len(words) > 0 {
			fmt.Fprintf(&b, " {%s}", strings.Join(words, " "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (s *storeSource) renderXML(root dewey.Code, kept []dewey.Code, keep map[string]bool) string {
	var b strings.Builder
	if err := s.renderXMLTo(&b, root, kept, keep); err != nil {
		return ""
	}
	return b.String()
}

func (s *storeSource) renderXMLTo(w io.Writer, _ dewey.Code, kept []dewey.Code, _ map[string]bool) error {
	var err error
	var stack []dewey.Code
	closeTo := func(depth int) {
		for err == nil && len(stack) > depth {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			_, err = fmt.Fprintf(w, "%s</%s>\n", strings.Repeat("  ", len(stack)), s.st.LabelOf(top))
		}
	}
	for _, c := range kept {
		for err == nil && len(stack) > 0 && !stack[len(stack)-1].IsAncestorOf(c) {
			closeTo(len(stack) - 1)
		}
		if err != nil {
			return err
		}
		ind := strings.Repeat("  ", len(stack))
		label := s.st.LabelOf(c)
		if _, err = fmt.Fprintf(w, "%s<%s>", ind, label); err != nil {
			return err
		}
		if words := s.st.ContentOf(c); len(words) > 0 {
			if _, err = io.WriteString(w, strings.Join(words, " ")); err != nil {
				return err
			}
		}
		if _, err = io.WriteString(w, "\n"); err != nil {
			return err
		}
		// Reopen: we emitted the start tag inline; push for closing later.
		stack = append(stack, c)
	}
	closeTo(0)
	return err
}
