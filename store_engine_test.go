package xks

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"xks/internal/analysis"
	"xks/internal/paperdata"
	"xks/internal/store"
)

func storeEngine(t *testing.T) *Engine {
	t.Helper()
	return FromStore(store.Shred(paperdata.Publications(), analysis.New()))
}

// Store-backed search returns exactly the same fragments (roots and kept
// node sets) as tree-backed search, across all paper queries and both
// algorithms.
func TestStoreBackedSearchMatchesTree(t *testing.T) {
	fromTree := FromTree(paperdata.Publications())
	fromStore := storeEngine(t)
	queries := []string{paperdata.Q1, paperdata.Q2, paperdata.Q3, paperdata.QLiuKeyword}
	for _, q := range queries {
		for _, algo := range []Algorithm{ValidRTF, MaxMatch, RawRTF} {
			opts := Options{Algorithm: algo}
			a, err := fromTree.Search(context.Background(), NewRequest(q, opts))
			if err != nil {
				t.Fatalf("tree search %q: %v", q, err)
			}
			b, err := fromStore.Search(context.Background(), NewRequest(q, opts))
			if err != nil {
				t.Fatalf("store search %q: %v", q, err)
			}
			if len(a.Fragments) != len(b.Fragments) {
				t.Fatalf("%q/%s: %d vs %d fragments", q, algo, len(a.Fragments), len(b.Fragments))
			}
			for i := range a.Fragments {
				fa, fb := a.Fragments[i], b.Fragments[i]
				if fa.Root != fb.Root || fa.RootLabel != fb.RootLabel || fa.IsSLCA != fb.IsSLCA {
					t.Errorf("%q/%s fragment %d: headers differ: %+v vs %+v", q, algo, i, fa, fb)
				}
				if fa.Len() != fb.Len() {
					t.Fatalf("%q/%s fragment %d: %d vs %d nodes\ntree:\n%s\nstore:\n%s",
						q, algo, i, fa.Len(), fb.Len(), fa.ASCII(), fb.ASCII())
				}
				for j := range fa.Nodes {
					if fa.Nodes[j].Dewey != fb.Nodes[j].Dewey || fa.Nodes[j].Label != fb.Nodes[j].Label {
						t.Errorf("%q/%s fragment %d node %d differs: %+v vs %+v",
							q, algo, i, j, fa.Nodes[j], fb.Nodes[j])
					}
				}
			}
		}
	}
}

func TestStoreBackedRendering(t *testing.T) {
	e := storeEngine(t)
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q3, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fragments[0]
	ascii := f.ASCII()
	// Skeleton with labels and content words, no raw text.
	if !strings.Contains(ascii, "(Publications)") || !strings.Contains(ascii, "vldb") {
		t.Errorf("store ASCII rendering:\n%s", ascii)
	}
	xmlOut := f.XML()
	if !strings.Contains(xmlOut, "<Publications>") || !strings.Contains(xmlOut, "</Publications>") {
		t.Errorf("store XML rendering:\n%s", xmlOut)
	}
	if !strings.Contains(xmlOut, "<ref>") {
		t.Errorf("store XML missing kept leaf:\n%s", xmlOut)
	}
	if strings.Contains(xmlOut, "Skyline") {
		t.Errorf("pruned branch leaked:\n%s", xmlOut)
	}
}

func TestStoreBackedTreeAccessorNil(t *testing.T) {
	e := storeEngine(t)
	if e.Tree() != nil {
		t.Error("store-backed engine should have nil Tree")
	}
	if e.Index() == nil {
		t.Error("Index should be available")
	}
}

func TestOpenStoreRoundTrip(t *testing.T) {
	s := store.Shred(paperdata.Team(), analysis.New())
	path := filepath.Join(t.TempDir(), "team.xks")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	e, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Search(context.Background(), NewRequest(paperdata.Q4, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fragments) != 1 || res.Fragments[0].Len() != 7 {
		t.Errorf("fragments after store round trip: %d / %d nodes",
			len(res.Fragments), res.Fragments[0].Len())
	}
	if _, err := OpenStore(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenStore on missing file should fail")
	}
}

func TestStoreBackedCompare(t *testing.T) {
	e := FromStore(store.Shred(paperdata.Team(), analysis.New()))
	cmp, err := e.Compare(context.Background(), NewRequest(paperdata.Q4, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratios.CFR != 0 || cmp.NumRTFs != 1 {
		t.Errorf("store-backed compare = %+v", cmp)
	}
}
